#ifndef ADBSCAN_SAMPLE_SAMPLE_FLAGS_H_
#define ADBSCAN_SAMPLE_SAMPLE_FLAGS_H_

#include <string>

#include "sample/sampled_dbscan.h"
#include "util/flags.h"

namespace adbscan {

// Parsed + validated view of the sampled-tier command-line knobs.
struct SampleFlagSettings {
  bool sampled = false;  // --pipeline=sampled selected
  SampledDbscanOptions options;
};

// Defines --pipeline / --sample_rate / --sample_strategy / --seed on
// `flags`. Call before Flags::Parse.
void DefineSampleFlags(Flags* flags);

// Strict validation of the sampled-tier knobs, in the spirit of the CLI's
// ValidateCommonFlags: every value is range-checked even when
// --pipeline=batch leaves it unused, so a malformed knob can never
// half-parse into a plausible run. Cross-flag rules when
// --pipeline=sampled: --shards must stay 1 (the sampled tier is not
// sharded) and --algo must stay at its "approx" default (the pipeline
// replaces the algorithm choice). On failure fills *error and returns
// false; on success fills *out.
bool ValidateSampleFlags(const Flags& flags, int num_shards,
                         const std::string& algo, SampleFlagSettings* out,
                         std::string* error);

}  // namespace adbscan

#endif  // ADBSCAN_SAMPLE_SAMPLE_FLAGS_H_
