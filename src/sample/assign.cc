#include "sample/assign.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <vector>

#include "geom/box.h"
#include "geom/kernels.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/scratch_arena.h"

namespace adbscan {

void AssignToNearestCore(const Dataset& data, const Grid& grid,
                         const CoreCellIndex& cci,
                         const std::vector<char>& is_core,
                         const std::vector<int32_t>& core_label, double eps,
                         int num_threads, Clustering* out) {
  const size_t n = data.size();
  const double eps2 = eps * eps;
  bool any_core = false;
  for (uint32_t id = 0; id < n && !any_core; ++id) any_core = is_core[id];
  if (!any_core) return;  // everything stays noise
  // Cores at distance exactly ε are assignable (DBSCAN's ball is closed)
  // and the nearest scan tracks strict <, so start one ulp past ε².
  const double bound_sq =
      std::nextafter(eps2, std::numeric_limits<double>::infinity());

  // All core points of a core cell share one cluster (Lemma 1), so cell
  // answers stand in for core answers everywhere below.
  std::vector<int32_t> cell_cluster(cci.size());
  for (uint32_t cc = 0; cc < cci.size(); ++cc) {
    cell_cluster[cc] = core_label[cci.core_points[cc].front()];
  }

  if (num_threads > 1) grid.WarmNeighborCache(eps, num_threads);
  std::mutex extras_mutex;
  // Cell by cell so the candidate core cells are gathered once per cell.
  // When every candidate belongs to one cluster — the overwhelmingly common
  // case — the nearest core's cluster IS that cluster, so mere existence of
  // a core within ε decides each resident: box shortcuts + early-exit
  // AnyWithin, usually zero distance evaluations (a core cell's diagonal is
  // ≤ ε, so its own residents hit the box-max test). Only multi-cluster
  // neighborhoods need the true nearest, found with NearestInBlock over the
  // candidates in increasing cell-to-cell lower-bound order.
  ParallelFor(grid.NumCells(), num_threads, [&](size_t begin, size_t end) {
  std::vector<int32_t> memberships;
  std::vector<std::pair<uint32_t, int32_t>> local_extras;
  std::vector<double> cell_lb;    // box-to-box lower bound per candidate
  std::vector<uint32_t> order;    // candidate indices, cell_lb ascending
  size_t queries = 0, assigned = 0, dist_evals = 0;
  for (uint32_t ci = static_cast<uint32_t>(begin); ci < end; ++ci) {
    const Grid::IdSpan cell_pts = grid.cell_points(ci);
    bool has_non_core = false;
    for (uint32_t id : cell_pts) {
      if (!is_core[id]) {
        has_non_core = true;
        break;
      }
    }
    if (!has_non_core) continue;

    // Candidate core cells: the cell itself plus its ε-neighbors. Any core
    // within ε of a resident lies in one of them.
    std::vector<uint32_t>& core_cells =
        WorkerScratch<uint32_t>(scratch::kSampleCoreCells);
    core_cells.clear();
    std::vector<uint32_t>& core_grid_cells =
        WorkerScratch<uint32_t>(scratch::kSampleGridCells);
    core_grid_cells.clear();
    std::vector<Box>& core_boxes =
        WorkerScratch<Box>(scratch::kSampleCoreBoxes);
    core_boxes.clear();
    bool multi_cluster = false;
    auto consider = [&](uint32_t cj) {
      const uint32_t cc = cci.core_cell_of_grid_cell[cj];
      if (cc == CoreCellIndex::kNone) return;
      if (!core_cells.empty() &&
          cell_cluster[cc] != cell_cluster[core_cells.front()]) {
        multi_cluster = true;
      }
      core_cells.push_back(cc);
      core_grid_cells.push_back(cj);
      core_boxes.push_back(grid.CellBoxOf(cj));
    };
    consider(ci);
    for (uint32_t cj : grid.EpsNeighbors(ci, eps)) consider(cj);
    if (core_cells.empty()) continue;  // residents stay noise

    // Per-candidate SoA views, built on first use.
    std::vector<simd::SoaSpan>& core_spans =
        WorkerScratch<simd::SoaSpan>(scratch::kSampleCoreViews);
    std::vector<simd::SoaBlock>& core_scratch =
        WorkerScratch<simd::SoaBlock>(scratch::kSampleCoreViews);
    core_spans.assign(core_cells.size(), simd::SoaSpan{});
    core_scratch.clear();
    core_scratch.resize(core_cells.size());
    auto span_of = [&](size_t k) -> const simd::SoaSpan& {
      if (core_spans[k].base == nullptr) {
        const uint32_t cc = core_cells[k];
        if (cci.all_core[cc]) {
          core_spans[k] = grid.CellBlock(core_grid_cells[k]);
        } else {
          core_scratch[k] = simd::SoaBlock(data, cci.core_points[cc].data(),
                                           cci.core_points[cc].size());
          core_spans[k] = core_scratch[k].span();
        }
      }
      return core_spans[k];
    };

    if (multi_cluster) {
      // dist²(q, cell k) ≥ box-to-box bound for every resident q, so a
      // cell_lb-ascending scan can stop as soon as the bound passes the
      // best distance found.
      const Box resident_box = grid.CellBoxOf(ci);
      cell_lb.resize(core_cells.size());
      for (size_t k = 0; k < core_cells.size(); ++k) {
        cell_lb[k] = resident_box.MinSquaredDistToBox(core_boxes[k]);
      }
      order.resize(core_cells.size());
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return cell_lb[a] < cell_lb[b];
      });
    }

    const int32_t lone_cluster = cell_cluster[core_cells.front()];
    for (uint32_t id : cell_pts) {
      if (is_core[id]) continue;
      const double* q = data.point(id);
      ++queries;

      if (!multi_cluster) {
        bool hit = false;
        for (size_t k = 0; k < core_cells.size() && !hit; ++k) {
          if (core_boxes[k].MinSquaredDistToPoint(q) > eps2) continue;
          hit = core_boxes[k].MaxSquaredDistToPoint(q) <= eps2;
          if (!hit) {
            const simd::SoaSpan& span = span_of(k);
            dist_evals += span.count;
            hit = simd::AnyWithin(q, span, eps2);
          }
        }
        if (hit) {
          out->label[id] = lone_cluster;
          ++assigned;
        }
        continue;
      }

      double best = bound_sq;
      int32_t primary = kNoise;
      for (uint32_t k : order) {
        if (cell_lb[k] >= best) break;
        if (core_boxes[k].MinSquaredDistToPoint(q) >= best) continue;
        const simd::SoaSpan& span = span_of(k);
        dist_evals += span.count;
        const simd::BlockNearest nb = simd::NearestInBlock(q, span);
        if (nb.squared_dist < best) {
          best = nb.squared_dist;
          primary = cell_cluster[core_cells[k]];
        }
      }
      if (primary == kNoise) continue;  // no core within ε: noise
      out->label[id] = primary;
      ++assigned;
      // Other clusters with a core within ε become extra memberships.
      memberships.clear();
      memberships.push_back(primary);
      for (size_t k = 0; k < core_cells.size(); ++k) {
        const int32_t cluster = cell_cluster[core_cells[k]];
        if (std::find(memberships.begin(), memberships.end(), cluster) !=
            memberships.end()) {
          continue;
        }
        if (core_boxes[k].MinSquaredDistToPoint(q) > eps2) continue;
        bool hit = core_boxes[k].MaxSquaredDistToPoint(q) <= eps2;
        if (!hit) {
          const simd::SoaSpan& span = span_of(k);
          dist_evals += span.count;
          hit = simd::AnyWithin(q, span, eps2);
        }
        if (hit) memberships.push_back(cluster);
      }
      for (size_t k = 1; k < memberships.size(); ++k) {
        local_extras.emplace_back(id, memberships[k]);
      }
    }
  }
  ADB_COUNT("sample.assign_queries", queries);
  ADB_COUNT("sample.assigned", assigned);
  ADB_COUNT("dist_evals.sample_assign", dist_evals);
  if (!local_extras.empty()) {
    ADB_COUNT("sample.extra_memberships", local_extras.size());
    const std::lock_guard<std::mutex> lock(extras_mutex);
    out->extra_memberships.insert(out->extra_memberships.end(),
                                  local_extras.begin(), local_extras.end());
  }
  });
}

}  // namespace adbscan
