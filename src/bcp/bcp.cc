#include "bcp/bcp.h"

#include <limits>

#include "geom/kernels.h"
#include "geom/point.h"
#include "geom/soa.h"
#include "index/kdtree.h"
#include "obs/metrics.h"

namespace adbscan {
namespace {

std::optional<BcpPair> BruteForcePair(const Dataset& data,
                                      const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  // Gather B once and probe it with every point of A through the batch
  // kernel. A-outer order and the strict-< updates reproduce the doubly
  // nested scalar scan's tie-breaking exactly (first minimal pair in
  // (a-order, b-order) wins).
  const simd::SoaBlock block(data, b.data(), b.size());
  BcpPair best{a[0], b[0], std::numeric_limits<double>::infinity()};
  for (uint32_t pa : a) {
    const simd::BlockNearest bn =
        simd::NearestInBlock(data.point(pa), block.span());
    if (bn.squared_dist < best.squared_dist) {
      best = {pa, b[bn.index], bn.squared_dist};
    }
  }
  ADB_COUNT("dist_evals.bcp", a.size() * b.size());
  return best;
}

}  // namespace

std::optional<BcpPair> BichromaticClosestPair(const Dataset& data,
                                              const std::vector<uint32_t>& a,
                                              const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  ADB_COUNT("bcp.pair_tests", 1);
  if (a.size() * b.size() <= kBcpBruteForceThreshold) {
    return BruteForcePair(data, a, b);
  }
  // Index the larger set; probe with the smaller. The shrinking bound makes
  // later probes cheaper.
  const bool a_smaller = a.size() <= b.size();
  const std::vector<uint32_t>& probe = a_smaller ? a : b;
  const std::vector<uint32_t>& indexed = a_smaller ? b : a;
  KdTree tree(data, indexed);
  BcpPair best{probe[0], indexed[0],
               std::numeric_limits<double>::infinity()};
  ADB_COUNT("bcp.tree_probes", probe.size());
  for (uint32_t pid : probe) {
    const auto nn = tree.Nearest(data.point(pid), best.squared_dist);
    if (nn.has_value()) best = {pid, nn->id, nn->squared_dist};
  }
  if (!a_smaller) std::swap(best.a, best.b);
  return best;
}

bool ExistsPairWithin(const Dataset& data, const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b, double eps) {
  if (a.empty() || b.empty()) return false;
  ADB_COUNT("bcp.pair_tests", 1);
  const double eps2 = eps * eps;
  if (a.size() * b.size() <= kBcpBruteForceThreshold) {
    // Gather the larger set once, probe with the smaller through the batch
    // kernel. The existence answer is order-independent, so unlike
    // BruteForcePair we are free to pick the cheaper orientation.
    const bool a_smaller = a.size() <= b.size();
    const std::vector<uint32_t>& probe = a_smaller ? a : b;
    const std::vector<uint32_t>& gathered = a_smaller ? b : a;
    const simd::SoaBlock block(data, gathered.data(), gathered.size());
    size_t dist_evals = 0;
    for (uint32_t pid : probe) {
      dist_evals += gathered.size();
      if (simd::AnyWithin(data.point(pid), block.span(), eps2)) {
        ADB_COUNT("dist_evals.bcp", dist_evals);
        return true;
      }
    }
    ADB_COUNT("dist_evals.bcp", dist_evals);
    return false;
  }
  const std::vector<uint32_t>& probe = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& indexed = a.size() <= b.size() ? b : a;
  KdTree tree(data, indexed);
  size_t probes = 0;
  for (uint32_t pid : probe) {
    ++probes;
    if (tree.AnyWithin(data.point(pid), eps)) {
      ADB_COUNT("bcp.tree_probes", probes);
      return true;
    }
  }
  ADB_COUNT("bcp.tree_probes", probes);
  return false;
}

bool ExistsPairWithinBlock(const Dataset& data,
                           const std::vector<uint32_t>& probe,
                           const simd::SoaSpan& block, double eps) {
  if (probe.empty() || block.count == 0) return false;
  ADB_COUNT("bcp.pair_tests", 1);
  const double eps2 = eps * eps;
  size_t dist_evals = 0;
  bool found = false;
  for (uint32_t pid : probe) {
    dist_evals += block.count;
    if (simd::AnyWithin(data.point(pid), block, eps2)) {
      found = true;
      break;
    }
  }
  ADB_COUNT("dist_evals.bcp", dist_evals);
  return found;
}

}  // namespace adbscan
