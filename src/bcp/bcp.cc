#include "bcp/bcp.h"

#include <limits>

#include "geom/point.h"
#include "index/kdtree.h"
#include "obs/metrics.h"

namespace adbscan {
namespace {

// Below this |A|·|B| product a doubly-nested scan beats building a tree.
constexpr size_t kBruteForceThreshold = 2048;

std::optional<BcpPair> BruteForcePair(const Dataset& data,
                                      const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  BcpPair best{a[0], b[0], std::numeric_limits<double>::infinity()};
  const int dim = data.dim();
  for (uint32_t pa : a) {
    const double* p = data.point(pa);
    for (uint32_t pb : b) {
      const double d2 = SquaredDistance(p, data.point(pb), dim);
      if (d2 < best.squared_dist) best = {pa, pb, d2};
    }
  }
  ADB_COUNT("dist_evals.bcp", a.size() * b.size());
  return best;
}

}  // namespace

std::optional<BcpPair> BichromaticClosestPair(const Dataset& data,
                                              const std::vector<uint32_t>& a,
                                              const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  ADB_COUNT("bcp.pair_tests", 1);
  if (a.size() * b.size() <= kBruteForceThreshold) {
    return BruteForcePair(data, a, b);
  }
  // Index the larger set; probe with the smaller. The shrinking bound makes
  // later probes cheaper.
  const bool a_smaller = a.size() <= b.size();
  const std::vector<uint32_t>& probe = a_smaller ? a : b;
  const std::vector<uint32_t>& indexed = a_smaller ? b : a;
  KdTree tree(data, indexed);
  BcpPair best{probe[0], indexed[0],
               std::numeric_limits<double>::infinity()};
  ADB_COUNT("bcp.tree_probes", probe.size());
  for (uint32_t pid : probe) {
    const auto nn = tree.Nearest(data.point(pid), best.squared_dist);
    if (nn.has_value()) best = {pid, nn->id, nn->squared_dist};
  }
  if (!a_smaller) std::swap(best.a, best.b);
  return best;
}

bool ExistsPairWithin(const Dataset& data, const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b, double eps) {
  if (a.empty() || b.empty()) return false;
  ADB_COUNT("bcp.pair_tests", 1);
  const double eps2 = eps * eps;
  const int dim = data.dim();
  if (a.size() * b.size() <= kBruteForceThreshold) {
    size_t dist_evals = 0;
    for (uint32_t pa : a) {
      const double* p = data.point(pa);
      for (uint32_t pb : b) {
        ++dist_evals;
        if (SquaredDistance(p, data.point(pb), dim) <= eps2) {
          ADB_COUNT("dist_evals.bcp", dist_evals);
          return true;
        }
      }
    }
    ADB_COUNT("dist_evals.bcp", dist_evals);
    return false;
  }
  const std::vector<uint32_t>& probe = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& indexed = a.size() <= b.size() ? b : a;
  KdTree tree(data, indexed);
  size_t probes = 0;
  for (uint32_t pid : probe) {
    ++probes;
    if (tree.AnyWithin(data.point(pid), eps)) {
      ADB_COUNT("bcp.tree_probes", probes);
      return true;
    }
  }
  ADB_COUNT("bcp.tree_probes", probes);
  return false;
}

}  // namespace adbscan
