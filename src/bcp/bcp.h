#ifndef ADBSCAN_BCP_BCP_H_
#define ADBSCAN_BCP_BCP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/dataset.h"
#include "geom/soa.h"

namespace adbscan {

// Bichromatic closest pair (Section 2.3) between two subsets of a dataset.
//
// The paper invokes the algorithm of Agarwal et al. (Lemma 2) purely for its
// asymptotic bound; what the exact DBSCAN algorithm of Theorem 2 needs at
// runtime is a correct BCP *decision* ("is there a pair within ε?") between
// the core points of two ε-neighbor cells. This module provides both the
// exact pair and the decision procedure:
//  - small inputs (|A|·|B| below a threshold): brute force with early exit;
//  - large inputs: kd-tree on the larger set, nearest-neighbor query with a
//    shrinking distance bound for each point of the smaller set.
// See DESIGN.md's substitution table.

// Below this |A|·|B| product the decision procedures use a doubly-nested
// batch scan instead of building a kd-tree. Exported so callers holding a
// prebuilt SoA view of one side (e.g. the grid's per-cell blocks) can pick
// the gather-free entry point for the same size regime.
inline constexpr size_t kBcpBruteForceThreshold = 2048;

struct BcpPair {
  uint32_t a = 0;           // id from the first set
  uint32_t b = 0;           // id from the second set
  double squared_dist = 0;  // squared Euclidean distance
};

// Exact closest pair between sets A and B. nullopt iff either set is empty.
std::optional<BcpPair> BichromaticClosestPair(const Dataset& data,
                                              const std::vector<uint32_t>& a,
                                              const std::vector<uint32_t>& b);

// Decision version: true iff min-dist(A, B) <= eps. Early-exits on the first
// witness pair.
bool ExistsPairWithin(const Dataset& data, const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b, double eps);

// Decision version over a prebuilt SoA view: true iff some point of `probe`
// is within eps of a point of `block`. Same semantics as the brute path of
// ExistsPairWithin with `block` as the gathered side, minus the gather.
bool ExistsPairWithinBlock(const Dataset& data,
                           const std::vector<uint32_t>& probe,
                           const simd::SoaSpan& block, double eps);

}  // namespace adbscan

#endif  // ADBSCAN_BCP_BCP_H_
