#ifndef ADBSCAN_RANGECOUNT_APPROX_RANGE_COUNTER_H_
#define ADBSCAN_RANGECOUNT_APPROX_RANGE_COUNTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/dataset.h"
#include "geom/soa.h"
#include "grid/cell.h"
#include "index/kdtree.h"

namespace adbscan {

// The approximate range counting structure of Lemma 5 (Section 4.3): a
// quadtree-like hierarchical grid over a point set P, fixed for one (ε, ρ)
// pair.
//
// Level-i cells have side length ε/(2^i·√d); non-empty cells are subdivided
// into 2^d children until the side is at most ε·ρ/√d, i.e. the hierarchy has
// h = max(1, 1 + ⌈log2(1/ρ)⌉) levels. Each materialized (non-empty) cell
// stores the number of points of P it covers.
//
// Query(q) returns an integer guaranteed to lie in
//     [ |B(q, ε) ∩ P| ,  |B(q, ε(1+ρ)) ∩ P| ].
// The traversal ignores cells disjoint from B(q, ε), takes whole counts of
// cells fully inside B(q, ε(1+ρ)), recurses otherwise, and at leaf level
// counts the cell iff it intersects B(q, ε) — sound because a leaf has
// diameter ≤ ε·ρ.
//
// Expected O(n) construction (hashing), O(1 + (1/ρ)^(d-1)) query for fixed
// ε, ρ, d. When the structure has many level-0 cells, the roots intersecting
// B(q, ε) are located through a kd-tree over root cell centers instead of
// probing integer offsets (see grid/grid.h for the same trick).
class ApproxRangeCounter {
 public:
  // Builds over the subset `ids` of `data` (pass all ids for the whole set).
  // `data` must outlive the structure.
  ApproxRangeCounter(const Dataset& data, const std::vector<uint32_t>& ids,
                     double eps, double rho);

  // The count described above. Never less than the exact ε-count, never more
  // than the exact ε(1+ρ)-count.
  size_t Query(const double* q) const;

  // True iff Query(q) > 0, with early exit on the first counted cell.
  // This is the only operation the ρ-approximate DBSCAN edge test needs.
  bool QueryNonzero(const double* q) const;

  // True iff Query(q) >= threshold, stopping the traversal as soon as the
  // running total reaches it — the MinPts core test of the journal-version
  // approximate labeling.
  bool QueryAtLeast(const double* q, size_t threshold) const;

  double eps() const { return eps_; }
  double rho() const { return rho_; }
  int num_levels() const { return num_levels_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_points() const { return num_points_; }

  // Reusable build-time buffers (scatter target, per-position child slots,
  // one child table per level); defined and owned thread-locally by the
  // .cc so a worker constructing many counters in a row allocates only
  // while the buffers still grow.
  struct BuildScratch;

 private:
  struct Node {
    CellCoord coord;       // at this node's level resolution
    uint32_t count = 0;    // points of P covered
    int16_t level = 0;
    // Child node indices occupy child_pool_[child_begin, child_end);
    // an empty range marks a leaf.
    uint32_t child_begin = 0;
    uint32_t child_end = 0;
    bool IsLeaf() const { return child_begin == child_end; }
  };

  double SideAtLevel(int level) const { return level0_side_ / (1u << level); }

  // Recursively materializes the node for (level, coord) covering
  // scratch[begin, end); returns its index in nodes_.
  uint32_t BuildNode(int level, const CellCoord& coord, uint32_t begin,
                     uint32_t end, BuildScratch* bs);

  // Walks one root subtree, accumulating into *ans; stops descending once
  // *ans reaches stop_at (pass SIZE_MAX for a full count).
  void QueryNode(uint32_t node_idx, const double* q, size_t* ans,
                 size_t stop_at) const;

  const Dataset* data_;
  double eps_;
  double rho_;
  double level0_side_;
  int num_levels_;
  size_t num_points_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> child_pool_;     // flattened child index lists
  std::vector<uint32_t> roots_;          // level-0 node indices
  std::vector<uint32_t> scratch_;        // point ids, permuted during build
  // The search radius that decides which roots B(q, ε) can reach:
  // ε + half root-cell diameter + slack.
  double root_radius_ = 0.0;
  // Root lookup: for few roots, one batch-kernel distance pass over the SoA
  // block of root cell centers; kd-tree over those centers otherwise.
  std::unique_ptr<Dataset> root_centers_;
  std::unique_ptr<simd::SoaBlock> root_center_soa_;
  std::unique_ptr<KdTree> root_tree_;
};

}  // namespace adbscan

#endif  // ADBSCAN_RANGECOUNT_APPROX_RANGE_COUNTER_H_
