#include "rangecount/approx_range_counter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "geom/kernels.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/scratch_arena.h"

namespace adbscan {

// Build-time scratch: a scatter buffer and per-position slot array sized to
// the id count, one open-addressing table for the root grouping, and one
// (child coord, count/cursor) table per level shared by every node at that
// level. Thread-local and capacity-preserving, so the ρ-approximate
// pipeline — which constructs one counter per core cell inside ParallelFor
// — partitions without per-node heap traffic once a worker's buffers have
// grown to the largest cell it has seen.
struct ApproxRangeCounter::BuildScratch {
  std::vector<uint32_t> tmp;      // counting-scatter target
  std::vector<uint32_t> slot_of;  // per position: index into the live table
  std::vector<uint32_t> hash;     // root grouping: open-addressing slots
  std::vector<std::vector<std::pair<CellCoord, uint32_t>>> tables;
};

namespace {

// Above this many level-0 cells, root lookup goes through a kd-tree.
constexpr size_t kRootScanThreshold = 32;

constexpr uint32_t kNoSlot = 0xffffffffu;

int LevelsFor(double rho) {
  ADB_CHECK(rho > 0.0);
  if (rho >= 1.0) return 1;
  return 1 + static_cast<int>(std::ceil(std::log2(1.0 / rho)));
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

ApproxRangeCounter::BuildScratch& TlsBuildScratch() {
  thread_local ApproxRangeCounter::BuildScratch scratch;
  return scratch;
}

}  // namespace

ApproxRangeCounter::ApproxRangeCounter(const Dataset& data,
                                       const std::vector<uint32_t>& ids,
                                       double eps, double rho)
    : data_(&data),
      eps_(eps),
      rho_(rho),
      level0_side_(eps / std::sqrt(static_cast<double>(data.dim()))),
      num_levels_(LevelsFor(rho)),
      num_points_(ids.size()),
      scratch_(ids) {
  ADB_CHECK(eps > 0.0);
  ADB_COUNT("rangecount.structures", 1);
  if (scratch_.empty()) return;

  // Group points by level-0 cell with an open-addressing table plus a
  // last-cell memo (spatially coherent id order hits the memo most of the
  // time), then counting-scatter the ids so each root's members form one
  // contiguous, input-ordered scratch range. Roots keep first-appearance
  // order — the query layer only ever sums over them, so any fixed order
  // is equivalent.
  BuildScratch& bs = TlsBuildScratch();
  const size_t n_ids = scratch_.size();
  const CellCoordHash hasher;
  std::vector<std::pair<CellCoord, uint32_t>> roots_table;
  bs.hash.assign(NextPow2(2 * n_ids), kNoSlot);
  const size_t mask = bs.hash.size() - 1;
  if (bs.slot_of.size() < n_ids) bs.slot_of.resize(n_ids);
  if (bs.tmp.size() < n_ids) bs.tmp.resize(n_ids);
  CellCoord last_cc;
  uint32_t last_slot = kNoSlot;
  for (size_t i = 0; i < n_ids; ++i) {
    const CellCoord cc =
        CellCoord::Of(data.point(scratch_[i]), data.dim(), level0_side_);
    if (last_slot == kNoSlot || !(cc == last_cc)) {
      size_t h = hasher(cc) & mask;
      for (;;) {
        const uint32_t s = bs.hash[h];
        if (s == kNoSlot) {
          last_slot = static_cast<uint32_t>(roots_table.size());
          bs.hash[h] = last_slot;
          roots_table.emplace_back(cc, 0u);
          break;
        }
        if (roots_table[s].first == cc) {
          last_slot = s;
          break;
        }
        h = (h + 1) & mask;
      }
      last_cc = cc;
    }
    ++roots_table[last_slot].second;
    bs.slot_of[i] = last_slot;
  }
  uint32_t run = 0;
  for (auto& [coord, count] : roots_table) {
    const uint32_t c = count;
    count = run;  // becomes the scatter cursor
    run += c;
  }
  for (size_t i = 0; i < n_ids; ++i) {
    bs.tmp[roots_table[bs.slot_of[i]].second++] = scratch_[i];
  }
  std::copy(bs.tmp.begin(), bs.tmp.begin() + n_ids, scratch_.begin());

  nodes_.reserve(2 * ids.size());
  if (bs.tables.size() < static_cast<size_t>(num_levels_)) {
    bs.tables.resize(num_levels_);
  }
  uint32_t begin = 0;
  for (auto& [coord, end] : roots_table) {  // .second is now the range end
    roots_.push_back(BuildNode(0, coord, begin, end, &bs));
    begin = end;
  }

  // Roots that B(q, ε) can reach have cell centers within
  // ε + half cell diameter (+ slack against rounding) of q.
  const double diam = level0_side_ * std::sqrt(static_cast<double>(data.dim()));
  root_radius_ = eps_ + 0.5 * diam + 1e-9 * level0_side_;
  root_centers_ = std::make_unique<Dataset>(data.dim());
  root_centers_->Reserve(roots_.size());
  double center[kMaxDim];
  for (uint32_t r : roots_) {
    nodes_[r].coord.Center(level0_side_, center);
    root_centers_->Add(center);
  }
  if (roots_.size() > kRootScanThreshold) {
    root_tree_ = std::make_unique<KdTree>(*root_centers_);
  } else {
    root_center_soa_ = std::make_unique<simd::SoaBlock>(*root_centers_);
  }
}

uint32_t ApproxRangeCounter::BuildNode(int level, const CellCoord& coord,
                                       uint32_t begin, uint32_t end,
                                       BuildScratch* bs) {
  ADB_DCHECK(begin < end);
  const uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[node_idx];
    node.coord = coord;
    node.level = static_cast<int16_t>(level);
    node.count = end - begin;
  }
  if (level + 1 >= num_levels_) return node_idx;  // leaf

  // Path-compress singleton chains: a 1-point node subdivides into a chain
  // of 1-point nodes all the way down, so jump straight to the deepest
  // level. The deeper box only tightens both query rules (smaller max-dist
  // for take-whole, larger min-dist for pruning), and the leaf-diameter
  // soundness argument applies verbatim. Roots are exempt — the root
  // lookup structures assume level-0 coordinates.
  if (end - begin == 1 && level > 0) {
    Node& node = nodes_[node_idx];
    node.level = static_cast<int16_t>(num_levels_ - 1);
    node.coord = CellCoord::Of(data_->point(scratch_[begin]), data_->dim(),
                               SideAtLevel(num_levels_ - 1));
    return node_idx;
  }

  // Partition scratch_[begin, end) by child cell (about 2^d children, so a
  // memo-assisted linear table probe beats any hashing) with a stable
  // counting scatter. The per-level tables are safe under recursion: this
  // frame only touches tables[level], descendants only deeper levels, and
  // siblings run strictly after this subtree returns. tmp/slot_of are
  // shared across frames but fully consumed before the recursion below.
  const double child_side = SideAtLevel(level + 1);
  std::vector<std::pair<CellCoord, uint32_t>>& table = bs->tables[level];
  table.clear();
  CellCoord last_cc;
  uint32_t last_slot = kNoSlot;
  for (uint32_t i = begin; i < end; ++i) {
    const CellCoord cc =
        CellCoord::Of(data_->point(scratch_[i]), data_->dim(), child_side);
    if (last_slot == kNoSlot || !(cc == last_cc)) {
      uint32_t s = 0;
      const uint32_t table_size = static_cast<uint32_t>(table.size());
      while (s < table_size && !(table[s].first == cc)) ++s;
      if (s == table_size) table.emplace_back(cc, 0u);
      last_cc = cc;
      last_slot = s;
    }
    ++table[last_slot].second;
    bs->slot_of[i] = last_slot;
  }
  uint32_t run = begin;
  for (auto& [child_coord, count] : table) {
    const uint32_t c = count;
    count = run;  // becomes the scatter cursor
    run += c;
  }
  ADB_DCHECK(run == end);
  for (uint32_t i = begin; i < end; ++i) {
    bs->tmp[table[bs->slot_of[i]].second++] = scratch_[i];
  }
  std::copy(bs->tmp.begin() + begin, bs->tmp.begin() + end,
            scratch_.begin() + begin);

  // The child count is known before recursing, so this node's slots in the
  // shared child_pool_ are reserved up front and filled by index as each
  // depth-first child returns (descendants append their own slots after).
  const uint32_t pool_begin = static_cast<uint32_t>(child_pool_.size());
  child_pool_.resize(pool_begin + table.size());
  uint32_t child_begin = begin;
  for (size_t k = 0; k < table.size(); ++k) {
    child_pool_[pool_begin + k] =
        BuildNode(level + 1, table[k].first, child_begin, table[k].second, bs);
    child_begin = table[k].second;
  }
  Node& node = nodes_[node_idx];
  node.child_begin = pool_begin;
  node.child_end = pool_begin + static_cast<uint32_t>(table.size());
  return node_idx;
}

void ApproxRangeCounter::QueryNode(uint32_t node_idx, const double* q,
                                   size_t* ans, size_t stop_at) const {
  ADB_COUNT("rangecount.nodes_visited", 1);
  const Node& node = nodes_[node_idx];
  const Box box = node.coord.ToBox(SideAtLevel(node.level));
  const double d_min2 = box.MinSquaredDistToPoint(q);
  if (d_min2 > eps_ * eps_) return;  // disjoint from B(q, ε): ignore
  const double outer = eps_ * (1.0 + rho_);
  if (box.MaxSquaredDistToPoint(q) <= outer * outer) {
    *ans += node.count;  // fully inside B(q, ε(1+ρ)): take the count
    return;
  }
  if (node.IsLeaf()) {
    // Intersects B(q, ε) (d_min2 ≤ ε² checked above) and has diameter ≤ ερ,
    // so it lies inside B(q, ε(1+ρ)): counting it is sound.
    *ans += node.count;
    return;
  }
  for (uint32_t i = node.child_begin; i < node.child_end; ++i) {
    QueryNode(child_pool_[i], q, ans, stop_at);
    if (*ans >= stop_at) return;
  }
}

size_t ApproxRangeCounter::Query(const double* q) const {
  ADB_COUNT("rangecount.probes", 1);
  size_t ans = 0;
  if (roots_.empty()) return ans;
  if (root_tree_ == nullptr) {
    // One batch-kernel pass over the root centers prunes roots whose cells
    // cannot intersect B(q, ε): center farther than root_radius_ ⇒ box min
    // distance > ε ⇒ the subtree would contribute nothing anyway.
    alignas(simd::kSoaAlignment) double
        d2[simd::PaddedCount(kRootScanThreshold)];
    simd::SquaredDists(q, root_center_soa_->span(), d2);
    const double radius2 = root_radius_ * root_radius_;
    for (size_t i = 0; i < roots_.size(); ++i) {
      if (d2[i] <= radius2) QueryNode(roots_[i], q, &ans, SIZE_MAX);
    }
    return ans;
  }
  // Worker-local buffers keep the per-probe root lookup allocation-free in
  // steady state (these probes run once per point inside ParallelFor).
  std::vector<uint32_t>& hits = WorkerScratch<uint32_t>(scratch::kRangeCountRoots);
  std::vector<uint32_t>& stack =
      WorkerScratch<uint32_t>(scratch::kRangeCountStack);
  root_tree_->RangeQueryInto(q, root_radius_, &hits, &stack);
  for (uint32_t root_pos : hits) {
    QueryNode(roots_[root_pos], q, &ans, SIZE_MAX);
  }
  return ans;
}

bool ApproxRangeCounter::QueryAtLeast(const double* q,
                                      size_t threshold) const {
  ADB_COUNT("rangecount.probes", 1);
  if (threshold == 0) return true;
  size_t ans = 0;
  if (roots_.empty()) return false;
  if (root_tree_ == nullptr) {
    alignas(simd::kSoaAlignment) double
        d2[simd::PaddedCount(kRootScanThreshold)];
    simd::SquaredDists(q, root_center_soa_->span(), d2);
    const double radius2 = root_radius_ * root_radius_;
    for (size_t i = 0; i < roots_.size(); ++i) {
      if (d2[i] > radius2) continue;
      QueryNode(roots_[i], q, &ans, threshold);
      if (ans >= threshold) return true;
    }
    return false;
  }
  std::vector<uint32_t>& hits = WorkerScratch<uint32_t>(scratch::kRangeCountRoots);
  std::vector<uint32_t>& stack =
      WorkerScratch<uint32_t>(scratch::kRangeCountStack);
  root_tree_->RangeQueryInto(q, root_radius_, &hits, &stack);
  for (uint32_t root_pos : hits) {
    QueryNode(roots_[root_pos], q, &ans, threshold);
    if (ans >= threshold) return true;
  }
  return false;
}

bool ApproxRangeCounter::QueryNonzero(const double* q) const {
  return QueryAtLeast(q, 1);
}

}  // namespace adbscan
