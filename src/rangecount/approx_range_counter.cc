#include "rangecount/approx_range_counter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geom/kernels.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace adbscan {
namespace {

// Above this many level-0 cells, root lookup goes through a kd-tree.
constexpr size_t kRootScanThreshold = 32;

int LevelsFor(double rho) {
  ADB_CHECK(rho > 0.0);
  if (rho >= 1.0) return 1;
  return 1 + static_cast<int>(std::ceil(std::log2(1.0 / rho)));
}

}  // namespace

ApproxRangeCounter::ApproxRangeCounter(const Dataset& data,
                                       const std::vector<uint32_t>& ids,
                                       double eps, double rho)
    : data_(&data),
      eps_(eps),
      rho_(rho),
      level0_side_(eps / std::sqrt(static_cast<double>(data.dim()))),
      num_levels_(LevelsFor(rho)),
      num_points_(ids.size()),
      scratch_(ids) {
  ADB_CHECK(eps > 0.0);
  ADB_COUNT("rangecount.structures", 1);
  if (scratch_.empty()) return;

  // Group points by level-0 cell, then build each root subtree over its
  // contiguous scratch range.
  std::unordered_map<CellCoord, std::vector<uint32_t>, CellCoordHash> groups;
  groups.reserve(scratch_.size());
  for (uint32_t id : scratch_) {
    groups[CellCoord::Of(data.point(id), data.dim(), level0_side_)]
        .push_back(id);
  }
  scratch_.clear();
  nodes_.reserve(2 * ids.size());
  for (auto& [coord, members] : groups) {
    const uint32_t begin = static_cast<uint32_t>(scratch_.size());
    scratch_.insert(scratch_.end(), members.begin(), members.end());
    const uint32_t end = static_cast<uint32_t>(scratch_.size());
    roots_.push_back(BuildNode(0, coord, begin, end));
  }

  // Roots that B(q, ε) can reach have cell centers within
  // ε + half cell diameter (+ slack against rounding) of q.
  const double diam = level0_side_ * std::sqrt(static_cast<double>(data.dim()));
  root_radius_ = eps_ + 0.5 * diam + 1e-9 * level0_side_;
  root_centers_ = std::make_unique<Dataset>(data.dim());
  root_centers_->Reserve(roots_.size());
  double center[kMaxDim];
  for (uint32_t r : roots_) {
    nodes_[r].coord.Center(level0_side_, center);
    root_centers_->Add(center);
  }
  if (roots_.size() > kRootScanThreshold) {
    root_tree_ = std::make_unique<KdTree>(*root_centers_);
  } else {
    root_center_soa_ = std::make_unique<simd::SoaBlock>(*root_centers_);
  }
}

uint32_t ApproxRangeCounter::BuildNode(int level, const CellCoord& coord,
                                       uint32_t begin, uint32_t end) {
  ADB_DCHECK(begin < end);
  const uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[node_idx];
    node.coord = coord;
    node.level = static_cast<int16_t>(level);
    node.count = end - begin;
  }
  if (level + 1 >= num_levels_) return node_idx;  // leaf

  // Partition scratch_[begin, end) by child cell (2^d possible children).
  const double child_side = SideAtLevel(level + 1);
  std::unordered_map<CellCoord, std::vector<uint32_t>, CellCoordHash> buckets;
  for (uint32_t i = begin; i < end; ++i) {
    const uint32_t id = scratch_[i];
    buckets[CellCoord::Of(data_->point(id), data_->dim(), child_side)]
        .push_back(id);
  }
  uint32_t cursor = begin;
  std::vector<std::pair<CellCoord, std::pair<uint32_t, uint32_t>>> ranges;
  ranges.reserve(buckets.size());
  for (auto& [child_coord, members] : buckets) {
    const uint32_t b = cursor;
    for (uint32_t id : members) scratch_[cursor++] = id;
    ranges.emplace_back(child_coord, std::make_pair(b, cursor));
  }
  ADB_DCHECK(cursor == end);

  // Children are built depth-first, so their node indices are not
  // contiguous; collect them and append to the shared child_pool_.
  std::vector<uint32_t> child_indices;
  child_indices.reserve(ranges.size());
  for (const auto& [child_coord, range] : ranges) {
    child_indices.push_back(
        BuildNode(level + 1, child_coord, range.first, range.second));
  }
  // Append the child index list into the shared child_index_ pool.
  const uint32_t pool_begin = static_cast<uint32_t>(child_pool_.size());
  child_pool_.insert(child_pool_.end(), child_indices.begin(),
                     child_indices.end());
  Node& node = nodes_[node_idx];
  node.child_begin = pool_begin;
  node.child_end = static_cast<uint32_t>(child_pool_.size());
  return node_idx;
}

void ApproxRangeCounter::QueryNode(uint32_t node_idx, const double* q,
                                   size_t* ans, size_t stop_at) const {
  ADB_COUNT("rangecount.nodes_visited", 1);
  const Node& node = nodes_[node_idx];
  const Box box = node.coord.ToBox(SideAtLevel(node.level));
  const double d_min2 = box.MinSquaredDistToPoint(q);
  if (d_min2 > eps_ * eps_) return;  // disjoint from B(q, ε): ignore
  const double outer = eps_ * (1.0 + rho_);
  if (box.MaxSquaredDistToPoint(q) <= outer * outer) {
    *ans += node.count;  // fully inside B(q, ε(1+ρ)): take the count
    return;
  }
  if (node.IsLeaf()) {
    // Intersects B(q, ε) (d_min2 ≤ ε² checked above) and has diameter ≤ ερ,
    // so it lies inside B(q, ε(1+ρ)): counting it is sound.
    *ans += node.count;
    return;
  }
  for (uint32_t i = node.child_begin; i < node.child_end; ++i) {
    QueryNode(child_pool_[i], q, ans, stop_at);
    if (*ans >= stop_at) return;
  }
}

size_t ApproxRangeCounter::Query(const double* q) const {
  ADB_COUNT("rangecount.probes", 1);
  size_t ans = 0;
  if (roots_.empty()) return ans;
  if (root_tree_ == nullptr) {
    // One batch-kernel pass over the root centers prunes roots whose cells
    // cannot intersect B(q, ε): center farther than root_radius_ ⇒ box min
    // distance > ε ⇒ the subtree would contribute nothing anyway.
    alignas(simd::kSoaAlignment) double
        d2[simd::PaddedCount(kRootScanThreshold)];
    simd::SquaredDists(q, root_center_soa_->span(), d2);
    const double radius2 = root_radius_ * root_radius_;
    for (size_t i = 0; i < roots_.size(); ++i) {
      if (d2[i] <= radius2) QueryNode(roots_[i], q, &ans, SIZE_MAX);
    }
    return ans;
  }
  for (uint32_t root_pos : root_tree_->RangeQuery(q, root_radius_)) {
    QueryNode(roots_[root_pos], q, &ans, SIZE_MAX);
  }
  return ans;
}

bool ApproxRangeCounter::QueryAtLeast(const double* q,
                                      size_t threshold) const {
  ADB_COUNT("rangecount.probes", 1);
  if (threshold == 0) return true;
  size_t ans = 0;
  if (roots_.empty()) return false;
  if (root_tree_ == nullptr) {
    alignas(simd::kSoaAlignment) double
        d2[simd::PaddedCount(kRootScanThreshold)];
    simd::SquaredDists(q, root_center_soa_->span(), d2);
    const double radius2 = root_radius_ * root_radius_;
    for (size_t i = 0; i < roots_.size(); ++i) {
      if (d2[i] > radius2) continue;
      QueryNode(roots_[i], q, &ans, threshold);
      if (ans >= threshold) return true;
    }
    return false;
  }
  for (uint32_t root_pos : root_tree_->RangeQuery(q, root_radius_)) {
    QueryNode(roots_[root_pos], q, &ans, threshold);
    if (ans >= threshold) return true;
  }
  return false;
}

bool ApproxRangeCounter::QueryNonzero(const double* q) const {
  return QueryAtLeast(q, 1);
}

}  // namespace adbscan
