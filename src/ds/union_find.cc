#include "ds/union_find.h"

#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace adbscan {

UnionFind::UnionFind(uint32_t n) : parent_(n), size_(n, 1), num_sets_(n) {
  for (uint32_t i = 0; i < n; ++i) {
    parent_[i].store(i, std::memory_order_relaxed);
  }
}

void UnionFind::Grow(uint32_t n) {
  const uint32_t old = size();
  if (n <= old) return;
  // std::atomic is neither copyable nor movable, so growth swaps in a fresh
  // parent array rather than resizing in place.
  std::vector<std::atomic<uint32_t>> grown(n);
  for (uint32_t i = 0; i < old; ++i) {
    grown[i].store(parent_[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  for (uint32_t i = old; i < n; ++i) {
    grown[i].store(i, std::memory_order_relaxed);
  }
  parent_ = std::move(grown);
  size_.resize(n, 1);
  num_sets_.fetch_add(n - old, std::memory_order_relaxed);
}

uint32_t UnionFind::Find(uint32_t x) {
  ADB_DCHECK(x < parent_.size());
  ADB_COUNT("unionfind.finds", 1);
  uint32_t root = x;
  while (parent_[root].load(std::memory_order_relaxed) != root) {
    root = parent_[root].load(std::memory_order_relaxed);
  }
  // Path compression.
  while (parent_[x].load(std::memory_order_relaxed) != root) {
    const uint32_t next = parent_[x].load(std::memory_order_relaxed);
    parent_[x].store(root, std::memory_order_relaxed);
    x = next;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  ADB_COUNT("unionfind.unions", 1);
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb].store(ra, std::memory_order_relaxed);
  size_[ra] += size_[rb];
  num_sets_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

uint32_t UnionFind::FindConcurrent(uint32_t x) {
  ADB_DCHECK(x < parent_.size());
  while (true) {
    uint32_t p = parent_[x].load(std::memory_order_acquire);
    if (p == x) return x;
    const uint32_t gp = parent_[p].load(std::memory_order_acquire);
    if (gp == p) return p;
    // Path halving: splice x past p. Failure just means someone else
    // already improved (or merged) this link; either way, progress.
    parent_[x].compare_exchange_weak(p, gp, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
    x = gp;
  }
}

bool UnionFind::UniteConcurrent(uint32_t a, uint32_t b) {
  uint32_t ra = FindConcurrent(a);
  uint32_t rb = FindConcurrent(b);
  while (ra != rb) {
    // Index priority: the higher-index root is linked under the lower, so
    // every link strictly decreases the root index and cycles cannot form.
    if (ra < rb) std::swap(ra, rb);
    uint32_t expected = ra;
    if (parent_[ra].compare_exchange_strong(expected, rb,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      // CAS succeeded only if ra was still a root: the link is published.
      ADB_COUNT("unionfind.unions", 1);
      num_sets_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    // ra gained a parent concurrently; chase the new roots and retry.
    ra = FindConcurrent(expected);
    rb = FindConcurrent(rb);
  }
  return false;
}

uint32_t UnionFind::SetSize(uint32_t x) { return size_[Find(x)]; }

std::vector<uint32_t> UnionFind::ComponentIds() {
  constexpr uint32_t kUnassigned = 0xffffffffu;
  std::vector<uint32_t> root_to_id(parent_.size(), kUnassigned);
  std::vector<uint32_t> ids(parent_.size());
  uint32_t next_id = 0;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    const uint32_t r = Find(i);
    if (root_to_id[r] == kUnassigned) root_to_id[r] = next_id++;
    ids[i] = root_to_id[r];
  }
  return ids;
}

}  // namespace adbscan
