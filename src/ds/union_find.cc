#include "ds/union_find.h"

#include <numeric>

#include "obs/metrics.h"
#include "util/check.h"

namespace adbscan {

UnionFind::UnionFind(uint32_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

uint32_t UnionFind::Find(uint32_t x) {
  ADB_DCHECK(x < parent_.size());
  ADB_COUNT("unionfind.finds", 1);
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    const uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  ADB_COUNT("unionfind.unions", 1);
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

uint32_t UnionFind::SetSize(uint32_t x) { return size_[Find(x)]; }

std::vector<uint32_t> UnionFind::ComponentIds() {
  constexpr uint32_t kUnassigned = 0xffffffffu;
  std::vector<uint32_t> root_to_id(parent_.size(), kUnassigned);
  std::vector<uint32_t> ids(parent_.size());
  uint32_t next_id = 0;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    const uint32_t r = Find(i);
    if (root_to_id[r] == kUnassigned) root_to_id[r] = next_id++;
    ids[i] = root_to_id[r];
  }
  return ids;
}

}  // namespace adbscan
