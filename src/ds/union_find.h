#ifndef ADBSCAN_DS_UNION_FIND_H_
#define ADBSCAN_DS_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace adbscan {

// Disjoint-set forest with union by size and path compression.
//
// Used to compute the connected components of the core-cell graph G
// (Section 2.2 / 3.2 / 4.4 of the paper) and for the GriDBSCAN cluster
// merge step. Amortized near-O(1) per operation.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n);

  uint32_t size() const { return static_cast<uint32_t>(parent_.size()); }

  // Representative of x's set.
  uint32_t Find(uint32_t x);

  // Merges the sets of a and b; returns true iff they were distinct.
  bool Union(uint32_t a, uint32_t b);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  // Number of elements in x's set.
  uint32_t SetSize(uint32_t x);

  // Number of disjoint sets remaining.
  uint32_t NumSets() const { return num_sets_; }

  // Maps each element to a dense component id in [0, NumComponents), numbered
  // in order of first appearance by element index.
  std::vector<uint32_t> ComponentIds();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  uint32_t num_sets_;
};

}  // namespace adbscan

#endif  // ADBSCAN_DS_UNION_FIND_H_
