#ifndef ADBSCAN_DS_UNION_FIND_H_
#define ADBSCAN_DS_UNION_FIND_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace adbscan {

// Disjoint-set forest with two operating modes over one parent array:
//
//   - Sequential: Find/Union with union by size and full path compression.
//     Amortized near-O(1) per operation.
//   - Concurrent: FindConcurrent/UniteConcurrent, the lock-free CAS-based
//     protocol of Wang, Gu & Shun ("Theoretically-Efficient and Practical
//     Parallel DBSCAN", SIGMOD'20, Section 4): roots are linked by index
//     priority (higher-index root becomes the child), a CAS on the root's
//     parent slot is the linearization point, and finds compact paths with
//     best-effort CAS halving. Any number of threads may interleave
//     FindConcurrent/UniteConcurrent calls; the resulting partition equals
//     the one produced by applying the same unions sequentially in any
//     order — exactly the property the DBSCAN merge phases need, since the
//     connected components of the core-cell graph are union-order-blind.
//
// Mixing rules: concurrent and sequential calls must not overlap in time
// (callers join their workers before reading results, which also
// establishes the necessary happens-before). After any UniteConcurrent,
// SetSize() is no longer meaningful (per-set sizes are not maintained
// concurrently); Find/Union/Connected/ComponentIds/NumSets all remain
// exact.
//
// Used to compute the connected components of the core-cell graph G
// (Section 2.2 / 3.2 / 4.4 of the paper) and for the GriDBSCAN cluster
// merge step.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n);

  uint32_t size() const { return static_cast<uint32_t>(parent_.size()); }

  // Appends fresh singleton elements until size() == n; no-op when the
  // structure is already that large. Existing sets are preserved. Must not
  // overlap in time with any other operation (the parent array reallocates),
  // which the dynamic clusterer guarantees by growing between batches.
  void Grow(uint32_t n);

  // Representative of x's set. Sequential callers only.
  uint32_t Find(uint32_t x);

  // Merges the sets of a and b; returns true iff they were distinct.
  // Sequential callers only.
  bool Union(uint32_t a, uint32_t b);

  // Representative of x's set; safe to call concurrently with other
  // FindConcurrent/UniteConcurrent calls. A returned root may be stale the
  // moment it is returned (another thread may merge it away), but equality
  // of two concurrent finds is stable: merged sets never split.
  uint32_t FindConcurrent(uint32_t x);

  // Merges the sets of a and b; returns true iff this call performed the
  // link. Lock-free; safe from any number of threads.
  bool UniteConcurrent(uint32_t a, uint32_t b);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  // Number of elements in x's set. Only valid while no UniteConcurrent has
  // been performed (sizes are not maintained by the concurrent protocol).
  uint32_t SetSize(uint32_t x);

  // Number of disjoint sets remaining (exact in both modes).
  uint32_t NumSets() const {
    return num_sets_.load(std::memory_order_relaxed);
  }

  // Maps each element to a dense component id in [0, NumComponents), numbered
  // in order of first appearance by element index.
  std::vector<uint32_t> ComponentIds();

 private:
  // Parent links; atomic so the concurrent protocol can CAS them. The
  // sequential operations use relaxed loads/stores (plain memory accesses
  // on every mainstream architecture).
  std::vector<std::atomic<uint32_t>> parent_;
  std::vector<uint32_t> size_;
  std::atomic<uint32_t> num_sets_;
};

}  // namespace adbscan

#endif  // ADBSCAN_DS_UNION_FIND_H_
