#ifndef ADBSCAN_SHARD_BOUNDARY_MERGER_H_
#define ADBSCAN_SHARD_BOUNDARY_MERGER_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "grid/cell.h"

namespace adbscan {

// Stitches per-shard clustering results into the monolithic numbering (see
// DESIGN.md "Sharded clustering" for the determinism argument).
//
// Each shard contributes, for its OWNED core cells only:
//  - the cell coordinates with the smallest core point id per cell (core
//    point lists are ascending, so this is list.front());
//  - its intra-shard connectivity as (cell, leader) pairs — the local
//    union-find flattened to one link per cell;
//  - its DECIDED cross-shard edges. Shards run in ascending Morton order,
//    so by the time a shard reaches an ε-close pair (owned core cell, halo
//    cell owned by an EARLIER shard), the earlier shard's exact core flags
//    are already published in the global output and both cells' full point
//    sets sit in this shard's halo-extended gather; the shard evaluates the
//    same deterministic test the monolithic ρ-approximate edge phase applies
//    — an approximate counter over the Morton-GREATER cell's core points
//    probed by the Morton-lesser cell's core points, the c1 < c2 probe
//    direction of the core-cell-index ordering — and emits only the edges
//    that pass. Pairs whose halo side belongs to a LATER shard are left for
//    that shard, which sees the mirrored pair (halos are recorded
//    both-sided). Every cross-shard ε-close core-cell pair is therefore
//    decided exactly once, and the merger never touches point data.
//
// Merge() unions the links and decided edges — edge outcomes are pure
// functions of the two cells' coordinate sets, so any union order yields
// the monolithic components — and numbers components by their minimum core
// point id, reproducing the monolithic "first core point in id order"
// cluster ids exactly. Peak merger state is O(global core cells), never
// O(points): that is what keeps the out-of-core path's resident set
// bounded by the largest single shard.
class BoundaryMerger {
 public:
  explicit BoundaryMerger(int dim);

  // Accumulates one shard's pass-1 emission; cells must be owned by exactly
  // one shard across all calls. `cross_edges` are decided edges as (local
  // cell index, other cell coordinate) with the other cell owned by an
  // earlier shard; `cross_candidates` counts the ε-close core-core pairs
  // this shard decided (edges plus rejections), for stats only.
  void AddShardResult(std::vector<CellCoord> core_cells,
                      std::vector<uint32_t> first_core_id,
                      std::vector<uint32_t> leader_index,
                      std::vector<std::pair<uint32_t, CellCoord>> cross_edges,
                      size_t cross_candidates);

  struct Result {
    int32_t num_clusters = 0;
    std::vector<CellCoord> cells;     // all global core cells, Morton order
    std::vector<int32_t> cell_label;  // cluster id per cell, parallel
    size_t cross_candidates = 0;      // unique decided core-core pairs
    size_t cross_edges = 0;

    // Cluster id of the core cell at cc (binary search), kNoise if cc is
    // not a core cell.
    int32_t LabelOf(const CellCoord& cc, int dim) const;
  };

  // Unions intra-shard links and decided cross-shard edges, then numbers
  // the components. Call once, after every shard was added.
  Result Merge();

 private:
  int dim_;

  // Accumulated emissions, global-cell flavored.
  std::vector<CellCoord> cells_;
  std::vector<uint32_t> first_core_id_;
  std::vector<std::pair<uint32_t, uint32_t>> links_;  // (cell, leader) indices
  std::vector<std::pair<uint32_t, CellCoord>> cross_;  // decided edges
  size_t cross_candidates_ = 0;
};

}  // namespace adbscan

#endif  // ADBSCAN_SHARD_BOUNDARY_MERGER_H_
