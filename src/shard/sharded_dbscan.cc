#include "shard/sharded_dbscan.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/border.h"
#include "core/core_labeling.h"
#include "ds/union_find.h"
#include "grid/grid.h"
#include "grid/morton.h"
#include "obs/metrics.h"
#include "rangecount/approx_range_counter.h"
#include "shard/boundary_merger.h"
#include "shard/shard_planner.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

// One shard's owned ∪ halo working set: a compact dataset plus the map back
// to global point ids (ascending, because the gather scans ids in order —
// so local id order is the global id order restricted to the subset, and
// "first core point in id order" agrees between the two framings).
struct ShardSubset {
  Dataset local;
  std::vector<uint32_t> to_global;

  explicit ShardSubset(int dim) : local(dim) {}
};

ShardSubset GatherShard(const Dataset& data, const ShardPlanner& plan,
                        int s) {
  ShardSubset subset(data.dim());
  const int dim = data.dim();
  const double side = plan.side();
  const size_t expect = plan.OwnedPoints(s) + plan.HaloPoints(s);
  subset.local.Reserve(expect);
  subset.to_global.reserve(expect);
  for (size_t i = 0; i < data.size(); ++i) {
    const CellCoord cc = CellCoord::Of(data.point(i), dim, side);
    const uint32_t rank = plan.RankOf(cc);
    ADB_DCHECK(rank != ShardPlanner::kNoCell);
    if (!plan.Owns(s, rank) && !plan.InHalo(s, rank)) continue;
    subset.local.Add(data.point(i));
    subset.to_global.push_back(static_cast<uint32_t>(i));
  }
  return subset;
}

}  // namespace

Clustering ShardedApproxDbscan(const Dataset& data, const DbscanParams& params,
                               double rho, int num_shards,
                               const ApproxDbscanOptions& options,
                               ShardedRunStats* stats) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  ADB_CHECK(rho > 0.0);
  ADB_CHECK(num_shards >= 1);
  // Journal-mode approximate core counting builds one counter over the
  // WHOLE dataset — the global view shard-at-a-time execution exists to
  // avoid. Exact core labeling (the conference-paper definition) shards
  // losslessly; reject the incompatible mode loudly.
  ADB_CHECK_MSG(!options.approximate_core_counting,
                "sharded clustering requires exact core counting");

  const size_t n = data.size();
  const int dim = data.dim();
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);

  ADB_COUNT("shard.shards", 0);
  ADB_COUNT("shard.cells", 0);
  ADB_COUNT("shard.halo_cells", 0);
  ADB_COUNT("shard.halo_points", 0);
  ADB_COUNT("shard.boundary_cells", 0);
  ADB_COUNT("shard.cross_candidates", 0);
  ADB_COUNT("shard.cross_edges", 0);
  if (stats != nullptr) *stats = ShardedRunStats{};
  if (n == 0) return out;

  std::optional<ShardPlanner> plan_storage;
  {
    ADB_PHASE("shard.plan");
    plan_storage.emplace(data, params.eps, num_shards, params.num_threads);
  }
  const ShardPlanner& plan = *plan_storage;
  size_t halo_cells = 0, halo_points = 0;
  for (int s = 0; s < num_shards; ++s) {
    halo_cells += plan.Halo(s).size();
    halo_points += plan.HaloPoints(s);
  }
  ADB_COUNT("shard.shards", static_cast<size_t>(num_shards));
  ADB_COUNT("shard.cells", plan.num_cells());
  ADB_COUNT("shard.halo_cells", halo_cells);
  ADB_COUNT("shard.halo_points", halo_points);
  if (stats != nullptr) {
    stats->num_shards = num_shards;
    stats->num_cells = plan.num_cells();
    stats->halo_cells = halo_cells;
    stats->halo_points = halo_points;
  }

  BoundaryMerger merger(dim);
  size_t boundary_cells_total = 0;
  size_t max_resident = 0;

  // Pass 1, shard at a time: exact core labeling for owned points, local
  // core-cell graph over OWNED core cells (halo core status is
  // unreliable-by-construction here and masked off; the halo exists so that
  // owned points see every ε-neighbor), boundary emissions for the merger.
  for (int s = 0; s < num_shards; ++s) {
    ADB_PHASE("shard.cluster");
    const ShardSubset subset = GatherShard(data, plan, s);
    const size_t ln = subset.local.size();
    max_resident = std::max(max_resident, ln);
    if (ln == 0) continue;

    const Grid grid(subset.local, plan.side(),
                    params.num_threads);
    if (params.num_threads > 1) {
      grid.WarmNeighborCache(params.eps, params.num_threads);
    }
    const std::vector<char> is_core =
        LabelCorePoints(subset.local, grid, params);

    // Owned/halo split at cell granularity (cells never straddle shards).
    // Ranks are kept: the cross-edge routing below needs each halo cell's
    // owning shard.
    const size_t num_lcells = grid.NumCells();
    std::vector<char> owned_cell(num_lcells);
    std::vector<uint32_t> cell_rank(num_lcells);
    for (uint32_t lc = 0; lc < num_lcells; ++lc) {
      const uint32_t rank = plan.RankOf(grid.CellCoordOf(lc));
      ADB_DCHECK(rank != ShardPlanner::kNoCell);
      cell_rank[lc] = rank;
      owned_cell[lc] = plan.Owns(s, rank) ? 1 : 0;
    }
    // Owned core flags are globally exact (the halo covers every cell
    // within eps of an owned cell); publish them and mask halo points out
    // of the local core-cell graph.
    std::vector<char> masked = is_core;
    for (size_t j = 0; j < ln; ++j) {
      if (owned_cell[grid.CellOfPoint(static_cast<uint32_t>(j))]) {
        out.is_core[subset.to_global[j]] = is_core[j];
      } else {
        masked[j] = 0;
      }
    }

    const CoreCellIndex cci = BuildCoreCellIndex(grid, masked);
    std::vector<std::unique_ptr<ApproxRangeCounter>> counters(cci.size());
    ParallelFor(cci.size(), params.num_threads, [&](size_t begin,
                                                    size_t end) {
      for (size_t c = begin; c < end; ++c) {
        counters[c] = std::make_unique<ApproxRangeCounter>(
            subset.local, cci.core_points[c], params.eps, rho);
      }
    });
    const auto edge_test = [&](uint32_t c1, uint32_t c2) {
      const ApproxRangeCounter& counter = *counters[c2];
      for (uint32_t p : cci.core_points[c1]) {
        if (counter.QueryNonzero(subset.local.point(p))) return true;
      }
      return false;
    };

    // Intra-shard edge phase — the grid pipeline's edge loop over the
    // masked core-cell index (see core/grid_pipeline.cc for why the
    // connected-skip is sound under concurrency).
    UnionFind uf(static_cast<uint32_t>(cci.size()));
    if (params.num_threads > 1) {
      ParallelFor(cci.size(), params.num_threads, [&](size_t begin,
                                                      size_t end) {
        for (uint32_t c1 = static_cast<uint32_t>(begin); c1 < end; ++c1) {
          for (uint32_t gj :
               grid.EpsNeighbors(cci.grid_cell[c1], params.eps)) {
            const uint32_t c2 = cci.core_cell_of_grid_cell[gj];
            if (c2 == CoreCellIndex::kNone || c2 <= c1) continue;
            if (uf.FindConcurrent(c1) == uf.FindConcurrent(c2)) continue;
            if (edge_test(c1, c2)) uf.UniteConcurrent(c1, c2);
          }
        }
      });
    } else {
      for (uint32_t c1 = 0; c1 < cci.size(); ++c1) {
        for (uint32_t gj : grid.EpsNeighbors(cci.grid_cell[c1], params.eps)) {
          const uint32_t c2 = cci.core_cell_of_grid_cell[gj];
          if (c2 == CoreCellIndex::kNone || c2 <= c1) continue;
          if (uf.Connected(c1, c2)) continue;
          if (edge_test(c1, c2)) uf.Union(c1, c2);
        }
      }
    }

    // Emission: owned core cells (all cci cells are owned under the mask),
    // per-cell smallest core id, flattened local connectivity, and decided
    // cross-shard edges. Shards run in ascending Morton order, so when an
    // owned core cell is ε-close to a halo cell of an EARLIER shard, that
    // shard's exact core flags are already published in out.is_core and
    // both cells' full point sets sit in this gather — the edge is decided
    // right here with the monolithic probe direction. Pairs whose halo side
    // belongs to a LATER shard are skipped: halos are recorded both-sided,
    // so that shard sees the mirrored pair and decides it. The merger thus
    // keeps O(core cells) state and never needs point data, which is what
    // bounds the out-of-core peak by the largest single shard.
    std::vector<CellCoord> core_cells(cci.size());
    std::vector<uint32_t> first_core(cci.size());
    std::vector<uint32_t> leader(cci.size());
    std::vector<std::pair<uint32_t, CellCoord>> cross_edges;
    size_t cross_candidates = 0;
    // Per halo cell, lazily: its core point list (ascending local id, the
    // same order cci keeps) and a counter over it, shared by every owned
    // cell probing that halo cell.
    std::vector<char> halo_scanned(num_lcells, 0);
    std::vector<std::vector<uint32_t>> halo_core(num_lcells);
    std::vector<std::unique_ptr<ApproxRangeCounter>> halo_counter(num_lcells);
    for (uint32_t c = 0; c < cci.size(); ++c) {
      const uint32_t g1 = cci.grid_cell[c];
      core_cells[c] = grid.CellCoordOf(g1);
      first_core[c] = subset.to_global[cci.core_points[c].front()];
      leader[c] = uf.Find(c);
      bool boundary = false;
      for (uint32_t gj : grid.EpsNeighbors(g1, params.eps)) {
        if (owned_cell[gj]) continue;
        boundary = true;
        if (plan.ShardOf(cell_rank[gj]) > s) continue;  // mirrored pair later
        if (!halo_scanned[gj]) {
          halo_scanned[gj] = 1;
          for (uint32_t p : grid.cell_points(gj)) {
            if (out.is_core[subset.to_global[p]]) halo_core[gj].push_back(p);
          }
        }
        if (halo_core[gj].empty()) continue;  // not a core cell: no edge
        ++cross_candidates;
        // Counter over the Morton-greater cell's core points probed by the
        // Morton-lesser cell's — the monolithic c1 < c2 probe direction —
        // so the outcome is the same pure function of the two coordinate
        // sets the in-RAM edge phase evaluates.
        const CellCoord& cc2 = grid.CellCoordOf(gj);
        bool edge = false;
        if (MortonLess(core_cells[c].c.data(), cc2.c.data(), dim)) {
          if (halo_counter[gj] == nullptr) {
            halo_counter[gj] = std::make_unique<ApproxRangeCounter>(
                subset.local, halo_core[gj], params.eps, rho);
          }
          for (uint32_t p : cci.core_points[c]) {
            if (halo_counter[gj]->QueryNonzero(subset.local.point(p))) {
              edge = true;
              break;
            }
          }
        } else {
          const ApproxRangeCounter& counter = *counters[c];
          for (uint32_t p : halo_core[gj]) {
            if (counter.QueryNonzero(subset.local.point(p))) {
              edge = true;
              break;
            }
          }
        }
        if (edge) cross_edges.emplace_back(c, cc2);
      }
      if (boundary) ++boundary_cells_total;
    }
    merger.AddShardResult(std::move(core_cells), std::move(first_core),
                          std::move(leader), std::move(cross_edges),
                          cross_candidates);
  }
  ADB_COUNT("shard.boundary_cells", boundary_cells_total);

  BoundaryMerger::Result merged;
  {
    ADB_PHASE("shard.merge");
    merged = merger.Merge();
  }
  out.num_clusters = merged.num_clusters;
  if (stats != nullptr) {
    stats->boundary_cells = boundary_cells_total;
    stats->cross_candidates = merged.cross_candidates;
    stats->cross_edges = merged.cross_edges;
  }

  // Pass 2, shard at a time: border assignment under the exact global core
  // flags (complete after pass 1) and the merged cluster numbering. Halo
  // core points now participate as label sources; only owned points' labels
  // and extra memberships are copied out.
  for (int s = 0; s < num_shards; ++s) {
    ADB_PHASE("shard.border");
    const ShardSubset subset = GatherShard(data, plan, s);
    const size_t ln = subset.local.size();
    if (ln == 0) continue;

    const Grid grid(subset.local, plan.side(),
                    params.num_threads);
    if (params.num_threads > 1) {
      grid.WarmNeighborCache(params.eps, params.num_threads);
    }
    std::vector<char> is_core(ln);
    for (size_t j = 0; j < ln; ++j) {
      is_core[j] = out.is_core[subset.to_global[j]];
    }
    const size_t num_lcells = grid.NumCells();
    std::vector<char> owned_cell(num_lcells);
    std::vector<int32_t> cell_label(num_lcells, kNoise);
    for (uint32_t lc = 0; lc < num_lcells; ++lc) {
      const CellCoord cc = grid.CellCoordOf(lc);
      const uint32_t rank = plan.RankOf(cc);
      ADB_DCHECK(rank != ShardPlanner::kNoCell);
      owned_cell[lc] = plan.Owns(s, rank) ? 1 : 0;
      cell_label[lc] = merged.LabelOf(cc, dim);
    }

    Clustering local_out;
    local_out.label.assign(ln, kNoise);
    std::vector<int32_t> core_label(ln, kNoise);
    for (size_t j = 0; j < ln; ++j) {
      if (!is_core[j]) continue;
      const int32_t label =
          cell_label[grid.CellOfPoint(static_cast<uint32_t>(j))];
      ADB_DCHECK(label != kNoise);
      core_label[j] = label;
      local_out.label[j] = label;
    }
    const CoreCellIndex cci = BuildCoreCellIndex(grid, is_core);
    AssignBorderPoints(subset.local, grid, cci, is_core, core_label,
                       params.eps, &local_out, params.num_threads);

    for (size_t j = 0; j < ln; ++j) {
      if (!owned_cell[grid.CellOfPoint(static_cast<uint32_t>(j))]) continue;
      out.label[subset.to_global[j]] = local_out.label[j];
    }
    for (const auto& [lid, cluster] : local_out.extra_memberships) {
      if (!owned_cell[grid.CellOfPoint(lid)]) continue;
      out.extra_memberships.emplace_back(subset.to_global[lid], cluster);
    }
  }
  std::sort(out.extra_memberships.begin(), out.extra_memberships.end());
  if (stats != nullptr) stats->max_resident_points = max_resident;
  ADB_COUNT("shard.max_resident_points", max_resident);
  return out;
}

}  // namespace adbscan
