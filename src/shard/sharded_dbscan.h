#ifndef ADBSCAN_SHARD_SHARDED_DBSCAN_H_
#define ADBSCAN_SHARD_SHARDED_DBSCAN_H_

#include <cstddef>

#include "core/approx_dbscan.h"
#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// Aggregate observability of one sharded run (also exported as shard.*
// metrics counters).
struct ShardedRunStats {
  int num_shards = 0;
  size_t num_cells = 0;
  size_t halo_cells = 0;      // summed over shards
  size_t halo_points = 0;     // summed over shards
  size_t boundary_cells = 0;  // owned core cells adjacent to a halo cell
  size_t cross_candidates = 0;
  size_t cross_edges = 0;
  size_t max_resident_points = 0;  // largest owned+halo working set
};

// ρ-approximate DBSCAN over K contiguous Morton-range shards, bit-identical
// to ApproxDbscan(data, params, rho) for every K, thread count and storage
// mode (in-RAM or mmap-backed Dataset) — see DESIGN.md "Sharded clustering"
// for the invariants behind that guarantee.
//
// Shard-at-a-time execution: the planner streams the dataset once at cell
// granularity, then each shard gathers its owned ∪ halo points, clusters
// them with the existing grid pipeline machinery, and emits core cells,
// intra-shard connectivity and its decided cross-shard edges to the
// BoundaryMerger (edges to earlier shards' cells are decided in-shard,
// against core flags those shards already published); after the merge fixes
// global cluster numbering, a second per-shard pass assigns border points
// under exact global core flags. Peak memory is O(max shard working set +
// #cells + output), never O(n · dim) — the point coordinates themselves are
// only ever materialized per shard, which is the out-of-core path
// micro_shard demonstrates under a capped address space.
//
// Parallelism (params.num_threads) applies WITHIN each shard (grid build,
// labeling, edge phase, border assignment); the merge is a cheap serial
// union over O(core cells) state, and shards run one at a time by design,
// trading wall clock for bounded memory.
//
// options.approximate_core_counting is rejected (ADB_CHECK): the journal
// relaxation counts against the whole dataset at once, which is exactly the
// global view sharding exists to avoid.
Clustering ShardedApproxDbscan(const Dataset& data, const DbscanParams& params,
                               double rho, int num_shards,
                               const ApproxDbscanOptions& options = {},
                               ShardedRunStats* stats = nullptr);

}  // namespace adbscan

#endif  // ADBSCAN_SHARD_SHARDED_DBSCAN_H_
