#include "shard/shard_planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>

#include "grid/grid.h"
#include "grid/morton.h"
#include "grid/stencil.h"
#include "index/kdtree.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardPlanner::ShardPlanner(const Dataset& data, double eps, int num_shards,
                           int num_threads)
    : num_shards_(num_shards),
      dim_(data.dim()),
      eps_(eps),
      side_(Grid::SideFor(eps, data.dim())),
      num_points_(data.size()) {
  ADB_CHECK(num_shards >= 1);
  DiscoverCells(data, num_threads);
  SelectSplits();
  ComputeHalos(num_threads);
}

void ShardPlanner::DiscoverCells(const Dataset& data, int num_threads) {
  ADB_PHASE("shard.plan.discover");
  const size_t n = data.size();
  // Chunked discovery, same structure as Grid::BuildCsr's assign pass but
  // with no per-point output: each chunk finds its cells in a private table,
  // a sequential merge unifies them, and the Morton sort erases the
  // merge-order numbering — the plan is chunk- and thread-count-blind.
  // Chunks are bounded above as well as below: the per-chunk table is sized
  // by point count (2x slots), and the planner fronts the out-of-core path,
  // so an O(n) table from one giant chunk would reintroduce exactly the
  // peak-memory term sharding exists to avoid.
  constexpr size_t kMinChunk = 1 << 14;
  constexpr size_t kMaxChunk = 1 << 16;
  const size_t T = std::max<size_t>(
      std::min<size_t>(std::max(num_threads, 1),
                       std::max<size_t>(n / kMinChunk, 1)),
      (n + kMaxChunk - 1) / kMaxChunk);
  std::vector<std::vector<CellCoord>> local_coords(T);
  std::vector<std::vector<uint32_t>> local_counts(T);
  const CellCoordHash hasher;
  // T counts chunks, not workers: more chunks than threads just queue.
  ParallelFor(T, std::max(num_threads, 1), [&](size_t tb, size_t te) {
    for (size_t t = tb; t < te; ++t) {
      const size_t begin = n * t / T, end = n * (t + 1) / T;
      const size_t slots_n = NextPow2(2 * std::max<size_t>(end - begin, 1));
      const size_t mask = slots_n - 1;
      std::vector<uint32_t> slots(slots_n, kNoCell);
      for (size_t i = begin; i < end; ++i) {
        const CellCoord cc = CellCoord::Of(data.point(i), dim_, side_);
        size_t h = hasher(cc) & mask;
        uint32_t ci;
        for (;;) {
          ci = slots[h];
          if (ci == kNoCell) {
            ci = static_cast<uint32_t>(local_coords[t].size());
            slots[h] = ci;
            local_coords[t].push_back(cc);
            local_counts[t].push_back(0);
            break;
          }
          if (local_coords[t][ci] == cc) break;
          h = (h + 1) & mask;
        }
        ++local_counts[t][ci];
      }
    }
  });

  size_t upper = 0;
  for (size_t t = 0; t < T; ++t) upper += local_coords[t].size();
  const size_t slots_n = NextPow2(2 * std::max<size_t>(upper, 1));
  const size_t mask = slots_n - 1;
  std::vector<uint32_t> slots(slots_n, kNoCell);
  for (size_t t = 0; t < T; ++t) {
    for (size_t l = 0; l < local_coords[t].size(); ++l) {
      const CellCoord& cc = local_coords[t][l];
      size_t h = hasher(cc) & mask;
      uint32_t ci;
      for (;;) {
        ci = slots[h];
        if (ci == kNoCell) {
          ci = static_cast<uint32_t>(coords_.size());
          slots[h] = ci;
          coords_.push_back(cc);
          counts_.push_back(0);
          break;
        }
        if (coords_[ci] == cc) break;
        h = (h + 1) & mask;
      }
      counts_[ci] += local_counts[t][l];
    }
  }

  // Morton order, exactly as Grid::BuildCsr sorts — shard ranges are ranges
  // of the same cell sequence every per-shard grid will lay out.
  std::vector<uint32_t> order(coords_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return MortonLess(coords_[a].c.data(), coords_[b].c.data(), dim_);
  });
  std::vector<CellCoord> sorted_coords(coords_.size());
  std::vector<uint32_t> sorted_counts(coords_.size());
  for (size_t k = 0; k < order.size(); ++k) {
    sorted_coords[k] = coords_[order[k]];
    sorted_counts[k] = counts_[order[k]];
  }
  coords_ = std::move(sorted_coords);
  counts_ = std::move(sorted_counts);

  hash_slots_.assign(NextPow2(2 * std::max<size_t>(coords_.size(), 1)),
                     kNoCell);
  hash_mask_ = hash_slots_.size() - 1;
  for (uint32_t k = 0; k < coords_.size(); ++k) {
    size_t h = hasher(coords_[k]) & hash_mask_;
    while (hash_slots_[h] != kNoCell) h = (h + 1) & hash_mask_;
    hash_slots_[h] = k;
  }
}

uint32_t ShardPlanner::RankOf(const CellCoord& cc) const {
  if (coords_.empty()) return kNoCell;
  size_t h = CellCoordHash{}(cc) & hash_mask_;
  for (;;) {
    const uint32_t ci = hash_slots_[h];
    if (ci == kNoCell) return kNoCell;
    if (coords_[ci] == cc) return ci;
    h = (h + 1) & hash_mask_;
  }
}

void ShardPlanner::SelectSplits() {
  ADB_PHASE("shard.plan.split");
  const size_t num_cells = coords_.size();
  std::vector<size_t> prefix(num_cells + 1, 0);
  for (size_t k = 0; k < num_cells; ++k) prefix[k + 1] = prefix[k] + counts_[k];
  const size_t total = prefix[num_cells];

  // The first cell whose inclusive prefix reaches the k-th balanced target
  // becomes the last cell of shard k-1, so the cut lands just after it.
  // Monotone by construction; a shard may come out empty when fewer cells
  // than shards exist or counts are extremely skewed — the driver treats an
  // empty shard as a no-op.
  shard_begin_.assign(num_shards_ + 1, 0);
  for (int s = 1; s < num_shards_; ++s) {
    const size_t target =
        (total * static_cast<size_t>(s) + num_shards_ - 1) /
        static_cast<size_t>(num_shards_);
    const auto it = std::lower_bound(prefix.begin() + 1, prefix.end(), target);
    uint32_t b = static_cast<uint32_t>(it - prefix.begin());
    b = std::max(b, shard_begin_[s - 1]);
    shard_begin_[s] = std::min<uint32_t>(b, static_cast<uint32_t>(num_cells));
  }
  shard_begin_[num_shards_] = static_cast<uint32_t>(num_cells);

  owned_points_.assign(num_shards_, 0);
  for (int s = 0; s < num_shards_; ++s) {
    owned_points_[s] = prefix[shard_begin_[s + 1]] - prefix[shard_begin_[s]];
  }
}

int ShardPlanner::ShardOf(uint32_t rank) const {
  ADB_DCHECK(rank < coords_.size());
  const auto it = std::upper_bound(shard_begin_.begin() + 1,
                                   shard_begin_.end(), rank);
  return static_cast<int>(it - (shard_begin_.begin() + 1));
}

bool ShardPlanner::InHalo(int s, uint32_t rank) const {
  const std::vector<uint32_t>& h = halo_[s];
  return std::binary_search(h.begin(), h.end(), rank);
}

void ShardPlanner::ComputeHalos(int num_threads) {
  ADB_PHASE("shard.plan.halo");
  halo_.assign(num_shards_, {});
  halo_points_.assign(num_shards_, 0);
  const size_t num_cells = coords_.size();
  if (num_cells == 0 || num_shards_ == 1) return;

  // kd-tree over cell centers, the same enumeration trick Grid uses: the
  // candidate radius covers every cell whose box can be within eps, the
  // exact box-to-box distance then decides. For each ε-close cross-shard
  // pair (a, b) this marks b as halo of shard(a) AND a as halo of shard(b)
  // — the pair is seen from both sides, which is what lets the merger
  // require both-sided candidate recordings.
  Dataset centers(dim_);
  centers.Reserve(num_cells);
  double center[kMaxDim];
  for (const CellCoord& cc : coords_) {
    cc.Center(side_, center);
    centers.Add(center);
  }
  const KdTree tree(centers);
  const double diam = side_ * std::sqrt(static_cast<double>(dim_));
  const double radius = eps_ + diam + 1e-9 * side_;
  const double eps2 = eps_ * eps_;

  std::mutex merge_mutex;
  ParallelFor(num_cells, std::max(1, num_threads),
              [&](size_t begin, size_t end) {
    std::vector<std::vector<uint32_t>> mine(num_shards_);
    for (size_t a = begin; a < end; ++a) {
      const int sa = ShardOf(static_cast<uint32_t>(a));
      for (uint32_t b : tree.RangeQuery(centers.point(a), radius)) {
        if (b <= a) continue;  // each unordered pair handled once
        const int sb = ShardOf(b);
        if (sb == sa) continue;
        if (CellPairDist2(coords_[a], coords_[b], side_) > eps2) {
          continue;
        }
        mine[sa].push_back(b);
        mine[sb].push_back(static_cast<uint32_t>(a));
      }
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    for (int s = 0; s < num_shards_; ++s) {
      halo_[s].insert(halo_[s].end(), mine[s].begin(), mine[s].end());
    }
  });
  for (int s = 0; s < num_shards_; ++s) {
    std::vector<uint32_t>& out = halo_[s];
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    for (uint32_t r : out) halo_points_[s] += counts_[r];
  }
}

}  // namespace adbscan
