#ifndef ADBSCAN_SHARD_SHARD_PLANNER_H_
#define ADBSCAN_SHARD_SHARD_PLANNER_H_

#include <cstdint>
#include <vector>

#include "geom/dataset.h"
#include "grid/cell.h"

namespace adbscan {

// Partitions space into K contiguous Morton-range shards for out-of-core
// clustering (see DESIGN.md "Sharded clustering").
//
// The planner performs one streaming pass over the dataset at CELL
// granularity: it discovers the non-empty cells of the ε/√d grid (the same
// side the clustering pipeline uses, so shard cells and pipeline cells are
// the same objects), sorts them along the exact Z-order curve with the same
// MortonLess comparator Grid::BuildCsr sorts with, and cuts the sorted cell
// sequence into K ranges of near-equal POINT count (cells are never split:
// a cell belongs to exactly one shard, which is what makes per-shard core
// labeling exact). Its memory footprint is O(#cells + K·halo), never O(n),
// so it works over an mmap'ed dataset larger than RAM.
//
// Shard s owns the cells with Morton rank in [shard_begin(s),
// shard_begin(s+1)). Its halo is every non-owned, non-empty cell whose
// box-to-box distance to some owned cell is at most eps. The halo invariant:
// every point within eps of a point in an owned cell lies in an owned or
// halo cell — so core status computed over owned ∪ halo is exact for owned
// points, and every cross-shard core-cell edge has both endpoints known to
// the two owners (each sees the other's cell in its halo).
class ShardPlanner {
 public:
  static constexpr uint32_t kNoCell = 0xffffffffu;

  // Plans K shards over `data` for radius eps. num_threads parallelizes the
  // discovery scan and the halo enumeration; the plan is identical for
  // every thread count.
  ShardPlanner(const Dataset& data, double eps, int num_shards,
               int num_threads = 1);

  int num_shards() const { return num_shards_; }
  int dim() const { return dim_; }
  double side() const { return side_; }
  double eps() const { return eps_; }
  size_t num_cells() const { return coords_.size(); }
  size_t num_points() const { return num_points_; }

  // Cell at the given global Morton rank.
  const CellCoord& CellAt(uint32_t rank) const { return coords_[rank]; }
  uint32_t CellCount(uint32_t rank) const { return counts_[rank]; }

  // Global Morton rank of the cell with the given coordinates, or kNoCell
  // when no point of the dataset falls in it.
  uint32_t RankOf(const CellCoord& cc) const;

  // First owned rank of shard s; shard_begin(num_shards()) == num_cells().
  uint32_t shard_begin(int s) const { return shard_begin_[s]; }
  int ShardOf(uint32_t rank) const;
  bool Owns(int s, uint32_t rank) const {
    return rank >= shard_begin_[s] && rank < shard_begin_[s + 1];
  }

  // Halo cell ranks of shard s, ascending.
  const std::vector<uint32_t>& Halo(int s) const { return halo_[s]; }
  bool InHalo(int s, uint32_t rank) const;

  // Point counts: owned cells of s, and s's halo cells.
  size_t OwnedPoints(int s) const { return owned_points_[s]; }
  size_t HaloPoints(int s) const { return halo_points_[s]; }

 private:
  void DiscoverCells(const Dataset& data, int num_threads);
  void SelectSplits();
  void ComputeHalos(int num_threads);

  int num_shards_;
  int dim_;
  double eps_;
  double side_;
  size_t num_points_ = 0;

  std::vector<CellCoord> coords_;   // non-empty cells, Morton order
  std::vector<uint32_t> counts_;    // points per cell, parallel to coords_
  std::vector<uint32_t> shard_begin_;  // num_shards_ + 1 ranks
  std::vector<std::vector<uint32_t>> halo_;  // per shard, sorted ranks
  std::vector<size_t> owned_points_;
  std::vector<size_t> halo_points_;

  // Flat open-addressing coord -> rank table (same scheme as Grid's).
  std::vector<uint32_t> hash_slots_;
  size_t hash_mask_ = 0;
};

}  // namespace adbscan

#endif  // ADBSCAN_SHARD_SHARD_PLANNER_H_
