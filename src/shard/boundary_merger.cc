#include "shard/boundary_merger.h"

#include <algorithm>
#include <numeric>

#include "core/dbscan_types.h"
#include "ds/union_find.h"
#include "grid/morton.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace adbscan {

BoundaryMerger::BoundaryMerger(int dim) : dim_(dim) {}

void BoundaryMerger::AddShardResult(
    std::vector<CellCoord> core_cells, std::vector<uint32_t> first_core_id,
    std::vector<uint32_t> leader_index,
    std::vector<std::pair<uint32_t, CellCoord>> cross_edges,
    size_t cross_candidates) {
  ADB_CHECK(core_cells.size() == first_core_id.size());
  ADB_CHECK(core_cells.size() == leader_index.size());
  const uint32_t base = static_cast<uint32_t>(cells_.size());
  cells_.insert(cells_.end(), core_cells.begin(), core_cells.end());
  first_core_id_.insert(first_core_id_.end(), first_core_id.begin(),
                        first_core_id.end());
  for (size_t i = 0; i < leader_index.size(); ++i) {
    links_.emplace_back(base + static_cast<uint32_t>(i),
                        base + leader_index[i]);
  }
  for (auto& [idx, cc] : cross_edges) {
    cross_.emplace_back(base + idx, cc);
  }
  cross_candidates_ += cross_candidates;
}

int32_t BoundaryMerger::Result::LabelOf(const CellCoord& cc, int dim) const {
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), cc, [dim](const CellCoord& a,
                                            const CellCoord& b) {
        return MortonLess(a.c.data(), b.c.data(), dim);
      });
  if (it == cells.end() || !(*it == cc)) return kNoise;
  return cell_label[it - cells.begin()];
}

BoundaryMerger::Result BoundaryMerger::Merge() {
  Result result;
  const size_t m = cells_.size();

  // Global core-cell order = Morton order, the same order the monolithic
  // core-cell index enumerates (its cells are the grid's Morton-sorted
  // cells filtered to core ones).
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return MortonLess(cells_[a].c.data(), cells_[b].c.data(), dim_);
  });
  std::vector<uint32_t> new_of_old(m);
  for (uint32_t k = 0; k < m; ++k) new_of_old[order[k]] = k;
  result.cells.resize(m);
  std::vector<uint32_t> first_core(m);
  for (uint32_t k = 0; k < m; ++k) {
    result.cells[k] = cells_[order[k]];
    first_core[k] = first_core_id_[order[k]];
  }

  auto rank_of = [&](const CellCoord& cc) -> uint32_t {
    const auto it = std::lower_bound(
        result.cells.begin(), result.cells.end(), cc,
        [this](const CellCoord& a, const CellCoord& b) {
          return MortonLess(a.c.data(), b.c.data(), dim_);
        });
    ADB_CHECK(it != result.cells.end() && *it == cc);
    return static_cast<uint32_t>(it - result.cells.begin());
  };

  UnionFind uf(static_cast<uint32_t>(m));
  // Intra-shard connectivity: one (cell, leader) link per cell flattens
  // each shard's local components into the global structure.
  for (const auto& [a, b] : links_) {
    uf.Union(new_of_old[a], new_of_old[b]);
  }
  // Cross-shard edges were decided by the later-owner shard during pass 1
  // (both endpoints core, same probe direction as the monolithic edge
  // phase); each pair arrives exactly once, so unioning is all that is
  // left. The endpoint lookup must succeed: a decided edge only exists
  // between cells both shards emitted as core cells.
  for (const auto& [idx, cc] : cross_) {
    uf.Union(new_of_old[idx], rank_of(cc));
  }
  result.cross_candidates = cross_candidates_;
  result.cross_edges = cross_.size();
  ADB_COUNT("shard.cross_candidates", result.cross_candidates);
  ADB_COUNT("shard.cross_edges", result.cross_edges);

  // Monolithic numbering: clusters appear in ascending order of their first
  // core point id, and a component's first core point is the minimum of its
  // cells' per-cell minima.
  std::vector<uint32_t> root_min(m, 0xffffffffu);
  for (uint32_t k = 0; k < m; ++k) {
    const uint32_t r = uf.Find(k);
    root_min[r] = std::min(root_min[r], first_core[k]);
  }
  std::vector<std::pair<uint32_t, uint32_t>> roots;  // (min core id, root)
  for (uint32_t k = 0; k < m; ++k) {
    if (uf.Find(k) == k) roots.emplace_back(root_min[k], k);
  }
  std::sort(roots.begin(), roots.end());
  std::vector<int32_t> root_cluster(m, kNoise);
  for (size_t c = 0; c < roots.size(); ++c) {
    root_cluster[roots[c].second] = static_cast<int32_t>(c);
  }
  result.num_clusters = static_cast<int32_t>(roots.size());
  result.cell_label.resize(m);
  for (uint32_t k = 0; k < m; ++k) {
    result.cell_label[k] = root_cluster[uf.Find(k)];
  }
  return result;
}

}  // namespace adbscan
