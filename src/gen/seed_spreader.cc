#include "gen/seed_spreader.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace adbscan {
namespace {

// Uniform point in the ball B(center, radius), clamped to the domain box:
// direction from a spherical gaussian, length r·U^{1/d}.
void EmitInBall(Rng* rng, const double* center, double radius, int dim,
                double lo, double hi, double* out) {
  double dir[kMaxDim];
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (int i = 0; i < dim; ++i) {
      dir[i] = rng->NextGaussian();
      norm2 += dir[i] * dir[i];
    }
  } while (norm2 == 0.0);
  const double scale =
      radius * std::pow(rng->NextDouble(), 1.0 / dim) / std::sqrt(norm2);
  for (int i = 0; i < dim; ++i) {
    out[i] = std::clamp(center[i] + dir[i] * scale, lo, hi);
  }
}

void RandomDirection(Rng* rng, int dim, double* out) {
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (int i = 0; i < dim; ++i) {
      out[i] = rng->NextGaussian();
      norm2 += out[i] * out[i];
    }
  } while (norm2 == 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  for (int i = 0; i < dim; ++i) out[i] *= inv;
}

}  // namespace

Dataset GenerateSeedSpreader(const SeedSpreaderParams& params, uint64_t seed,
                             size_t* num_restarts) {
  ADB_CHECK(params.dim >= 1 && params.dim <= kMaxDim);
  ADB_CHECK(params.noise_fraction >= 0.0 && params.noise_fraction < 1.0);
  ADB_CHECK(params.domain_hi > params.domain_lo);
  const int dim = params.dim;
  const size_t cluster_steps = static_cast<size_t>(
      static_cast<double>(params.n) * (1.0 - params.noise_fraction));
  const size_t noise_points = params.n - cluster_steps;
  const double restart_prob =
      params.restart_prob >= 0.0
          ? params.restart_prob
          : (cluster_steps > 0 ? 10.0 / static_cast<double>(cluster_steps)
                               : 0.0);
  const double shift =
      params.shift_distance >= 0.0 ? params.shift_distance : 50.0 * dim;

  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(params.n);

  double location[kMaxDim];
  double buffer[kMaxDim];
  int counter = 0;
  size_t restarts = 0;

  for (size_t step = 0; step < cluster_steps; ++step) {
    const bool forced =
        step == 0 || (params.forced_restart_every > 0 &&
                      step % params.forced_restart_every == 0);
    const bool random_restart =
        params.forced_restart_every == 0 && step > 0 &&
        rng.NextBernoulli(restart_prob);
    if (forced || random_restart) {
      for (int i = 0; i < dim; ++i) {
        location[i] = rng.NextDouble(params.domain_lo, params.domain_hi);
      }
      counter = params.counter_reset;
      ++restarts;
    }
    if (counter == 0) {
      RandomDirection(&rng, dim, buffer);
      for (int i = 0; i < dim; ++i) {
        location[i] = std::clamp(location[i] + shift * buffer[i],
                                 params.domain_lo, params.domain_hi);
      }
      counter = params.counter_reset;
    }
    EmitInBall(&rng, location, params.point_radius, dim, params.domain_lo,
               params.domain_hi, buffer);
    data.Add(buffer);
    --counter;
  }

  for (size_t k = 0; k < noise_points; ++k) {
    for (int i = 0; i < dim; ++i) {
      buffer[i] = rng.NextDouble(params.domain_lo, params.domain_hi);
    }
    data.Add(buffer);
  }

  if (num_restarts != nullptr) *num_restarts = restarts;
  return data;
}

}  // namespace adbscan
