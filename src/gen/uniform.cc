#include "gen/uniform.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace adbscan {

Dataset GenerateUniform(int dim, size_t n, double lo, double hi,
                        uint64_t seed) {
  ADB_CHECK(hi > lo);
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  double buffer[kMaxDim];
  for (size_t k = 0; k < n; ++k) {
    for (int i = 0; i < dim; ++i) buffer[i] = rng.NextDouble(lo, hi);
    data.Add(buffer);
  }
  return data;
}

Dataset GenerateUniformBall(int dim, size_t n, const double* center,
                            double radius, uint64_t seed) {
  ADB_CHECK(radius > 0.0);
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  double dir[kMaxDim];
  double buffer[kMaxDim];
  for (size_t k = 0; k < n; ++k) {
    double norm2 = 0.0;
    do {
      norm2 = 0.0;
      for (int i = 0; i < dim; ++i) {
        dir[i] = rng.NextGaussian();
        norm2 += dir[i] * dir[i];
      }
    } while (norm2 == 0.0);
    const double scale =
        radius * std::pow(rng.NextDouble(), 1.0 / dim) / std::sqrt(norm2);
    for (int i = 0; i < dim; ++i) buffer[i] = center[i] + dir[i] * scale;
    data.Add(buffer);
  }
  return data;
}

}  // namespace adbscan
