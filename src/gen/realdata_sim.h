#ifndef ADBSCAN_GEN_REALDATA_SIM_H_
#define ADBSCAN_GEN_REALDATA_SIM_H_

#include <cstdint>

#include "geom/dataset.h"

namespace adbscan {

// Synthetic stand-ins for the three real datasets of Section 5.1, which are
// not redistributable here (see the substitution table in DESIGN.md). Each
// generator reproduces the *density structure* the experiments depend on —
// dense, irregularly shaped clusters of differing spread plus sparse
// background — in the paper's normalized domain [0, 1e5]^d, at a
// configurable cardinality (the paper used n = 3.85m / 3.63m / 2.05m).

// PAMAP2: 4 principal components of wearable-sensor activity data. Activity
// modes appear as anisotropic correlated walks (slow drift along the first
// components) of very different tightness, plus transition noise.
Dataset Pamap2Like(size_t n, uint64_t seed);

// Farm: 5-dimensional VZ-features of a satellite image. Natural-image
// features form a few large, smooth, blobby clusters with gradual density
// falloff and little uniform noise.
Dataset FarmLike(size_t n, uint64_t seed);

// Household: 7 numeric attributes of electricity usage. Appliance regimes
// repeat, producing strongly axis-correlated line/band-shaped clusters
// (coordinates tied to a shared regime intensity) and several recurring
// dense modes, with moderate noise.
Dataset HouseholdLike(size_t n, uint64_t seed);

}  // namespace adbscan

#endif  // ADBSCAN_GEN_REALDATA_SIM_H_
