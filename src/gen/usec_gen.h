#ifndef ADBSCAN_GEN_USEC_GEN_H_
#define ADBSCAN_GEN_USEC_GEN_H_

#include <cstdint>

#include "core/usec.h"

namespace adbscan {

// Random USEC instances (Section 2.3) with a planted answer, for testing
// and demonstrating the Lemma 4 reduction.

// Instance whose answer is YES: at least one point is placed inside a ball.
UsecInstance GenerateUsecYes(int dim, size_t num_points, size_t num_balls,
                             double radius, uint64_t seed);

// Instance whose answer is NO: points are rejection-sampled outside every
// ball. Requires the balls to cover well under the whole domain.
UsecInstance GenerateUsecNo(int dim, size_t num_points, size_t num_balls,
                            double radius, uint64_t seed);

}  // namespace adbscan

#endif  // ADBSCAN_GEN_USEC_GEN_H_
