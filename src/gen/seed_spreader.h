#ifndef ADBSCAN_GEN_SEED_SPREADER_H_
#define ADBSCAN_GEN_SEED_SPREADER_H_

#include <cstdint>

#include "geom/dataset.h"

namespace adbscan {

// The seed-spreader synthetic generator of Section 5.1: a "random walk with
// restart" that emits points around a moving spreader, producing
// snake-shaped dense clusters plus uniform background noise.
//
// Per step: (i) with probability restart_prob the spreader jumps to a
// uniformly random location and resets its counter to counter_reset;
// (ii) it emits one point uniformly at random in the ball of radius
// point_radius around its location and decrements the counter; when the
// counter hits 0 the spreader shifts shift_distance in a random direction
// and the counter resets. The first step forces a restart. n·(1−noise)
// steps emit cluster points; n·noise uniform noise points follow.
//
// Paper defaults (Table 1 context): counter_reset = 100,
// shift_distance = 50·d, restart_prob = 10/(n(1−noise)), noise = 1e-4,
// point_radius = 100, domain [0, 1e5]^d.
struct SeedSpreaderParams {
  int dim = 3;
  size_t n = 100000;
  double restart_prob = -1.0;       // < 0: use 10 / (n (1 - noise_fraction))
  double noise_fraction = 1e-4;
  int counter_reset = 100;          // c_reset
  double shift_distance = -1.0;     // < 0: use 50 * dim (r_shift)
  double point_radius = 100.0;
  double domain_lo = 0.0;
  double domain_hi = 1e5;
  // When > 0, restarts happen deterministically every this many steps
  // instead of randomly — used to regenerate the Figure 8 dataset (n = 1000,
  // exactly 4 restarts with forced_restart_every = 250).
  size_t forced_restart_every = 0;
};

// Deterministic for a fixed (params, seed). If num_restarts is non-null it
// receives the number of restarts (= number of generated clusters).
Dataset GenerateSeedSpreader(const SeedSpreaderParams& params, uint64_t seed,
                             size_t* num_restarts = nullptr);

}  // namespace adbscan

#endif  // ADBSCAN_GEN_SEED_SPREADER_H_
