#include "gen/usec_gen.h"

#include "geom/point.h"
#include "util/check.h"
#include "util/rng.h"

namespace adbscan {
namespace {

constexpr double kLo = 0.0;
constexpr double kHi = 1e5;

void FillUniform(Rng* rng, int dim, double* out) {
  for (int i = 0; i < dim; ++i) out[i] = rng->NextDouble(kLo, kHi);
}

UsecInstance GenerateBase(int dim, size_t num_balls, double radius,
                          Rng* rng) {
  UsecInstance instance(dim);
  instance.radius = radius;
  instance.ball_centers.Reserve(num_balls);
  double p[kMaxDim];
  for (size_t j = 0; j < num_balls; ++j) {
    FillUniform(rng, dim, p);
    instance.ball_centers.Add(p);
  }
  return instance;
}

bool CoveredByAnyBall(const UsecInstance& instance, const double* p) {
  const double r2 = instance.radius * instance.radius;
  for (size_t j = 0; j < instance.ball_centers.size(); ++j) {
    if (SquaredDistance(p, instance.ball_centers.point(j),
                        instance.points.dim()) <= r2) {
      return true;
    }
  }
  return false;
}

}  // namespace

UsecInstance GenerateUsecYes(int dim, size_t num_points, size_t num_balls,
                             double radius, uint64_t seed) {
  ADB_CHECK(num_points >= 1 && num_balls >= 1);
  Rng rng(seed);
  UsecInstance instance = GenerateBase(dim, num_balls, radius, &rng);
  instance.points.Reserve(num_points);
  double p[kMaxDim];
  for (size_t i = 0; i + 1 < num_points; ++i) {
    FillUniform(&rng, dim, p);
    instance.points.Add(p);
  }
  // Plant a witness: a point just inside a random ball.
  const size_t target = rng.NextBounded(num_balls);
  const double* center = instance.ball_centers.point(target);
  for (int i = 0; i < dim; ++i) p[i] = center[i];
  p[0] += 0.5 * radius;
  instance.points.Add(p);
  return instance;
}

UsecInstance GenerateUsecNo(int dim, size_t num_points, size_t num_balls,
                            double radius, uint64_t seed) {
  Rng rng(seed);
  UsecInstance instance = GenerateBase(dim, num_balls, radius, &rng);
  instance.points.Reserve(num_points);
  double p[kMaxDim];
  for (size_t i = 0; i < num_points; ++i) {
    size_t attempts = 0;
    do {
      FillUniform(&rng, dim, p);
      ADB_CHECK_MSG(++attempts < 100000,
                    "balls cover the domain; cannot plant a NO instance");
    } while (CoveredByAnyBall(instance, p));
    instance.points.Add(p);
  }
  return instance;
}

}  // namespace adbscan
