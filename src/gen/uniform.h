#ifndef ADBSCAN_GEN_UNIFORM_H_
#define ADBSCAN_GEN_UNIFORM_H_

#include <cstdint>

#include "geom/dataset.h"

namespace adbscan {

// n points uniformly distributed in [lo, hi]^dim. Used for noise-only
// stress tests and for the footnote-1 adversarial workloads.
Dataset GenerateUniform(int dim, size_t n, double lo, double hi,
                        uint64_t seed);

// n points uniformly distributed in the ball B(center, radius) — the
// degenerate "everything within ε of everything" input that makes KDD96
// quadratic (footnote 1). center must hold dim coordinates.
Dataset GenerateUniformBall(int dim, size_t n, const double* center,
                            double radius, uint64_t seed);

}  // namespace adbscan

#endif  // ADBSCAN_GEN_UNIFORM_H_
