#include "gen/realdata_sim.h"

#include <algorithm>
#include <cmath>

#include "geom/point.h"
#include "util/rng.h"

namespace adbscan {
namespace {

constexpr double kLo = 0.0;
constexpr double kHi = 1e5;

void UniformPoint(Rng* rng, int dim, double* out) {
  for (int i = 0; i < dim; ++i) out[i] = rng->NextDouble(kLo, kHi);
}

void Clamp(int dim, double* p) {
  for (int i = 0; i < dim; ++i) p[i] = std::clamp(p[i], kLo, kHi);
}

}  // namespace

Dataset Pamap2Like(size_t n, uint64_t seed) {
  constexpr int kDim = 4;
  constexpr int kModes = 14;  // distinct activity regimes
  Rng rng(seed);
  Dataset data(kDim);
  data.Reserve(n);

  // Per-mode anchor, per-axis spread (anisotropic: first components move
  // more, like leading principal components), and drift velocity.
  double anchor[kModes][kDim];
  double spread[kModes][kDim];
  for (int m = 0; m < kModes; ++m) {
    UniformPoint(&rng, kDim, anchor[m]);
    for (int i = 0; i < kDim; ++i) {
      const double base = rng.NextDouble(40.0, 220.0);
      spread[m][i] = base * (i == 0 ? 3.0 : (i == 1 ? 1.5 : 1.0));
    }
  }

  const size_t noise_points = n / 50;  // ~2% transition noise
  const size_t cluster_points = n - noise_points;
  double location[kDim];
  double p[kDim];
  int mode = 0;
  size_t run_left = 0;
  for (size_t k = 0; k < cluster_points; ++k) {
    if (run_left == 0) {
      mode = static_cast<int>(rng.NextBounded(kModes));
      run_left = 200 + rng.NextBounded(800);  // activity bout length
      for (int i = 0; i < kDim; ++i) location[i] = anchor[mode][i];
    }
    // Slow drift within the mode plus per-sample sensor jitter.
    for (int i = 0; i < kDim; ++i) {
      location[i] += rng.NextGaussian() * spread[mode][i] * 0.05;
      p[i] = location[i] + rng.NextGaussian() * spread[mode][i];
    }
    Clamp(kDim, p);
    data.Add(p);
    --run_left;
  }
  for (size_t k = 0; k < noise_points; ++k) {
    UniformPoint(&rng, kDim, p);
    data.Add(p);
  }
  return data;
}

Dataset FarmLike(size_t n, uint64_t seed) {
  constexpr int kDim = 5;
  constexpr int kBlobs = 6;  // terrain classes of the image
  Rng rng(seed);
  Dataset data(kDim);
  data.Reserve(n);

  double center[kBlobs][kDim];
  double sigma[kBlobs];
  double weight[kBlobs];
  double total_weight = 0.0;
  for (int b = 0; b < kBlobs; ++b) {
    UniformPoint(&rng, kDim, center[b]);
    sigma[b] = rng.NextDouble(400.0, 1600.0);
    weight[b] = rng.NextDouble(0.5, 2.0);
    total_weight += weight[b];
  }

  const size_t noise_points = n / 200;  // 0.5%: VZ features are mostly clean
  const size_t cluster_points = n - noise_points;
  double p[kDim];
  for (size_t k = 0; k < cluster_points; ++k) {
    double pick = rng.NextDouble() * total_weight;
    int b = 0;
    while (b + 1 < kBlobs && pick > weight[b]) {
      pick -= weight[b];
      ++b;
    }
    // Gradual falloff: mix of a tight core and a wide tail.
    const double s = rng.NextBernoulli(0.7) ? sigma[b] : 3.0 * sigma[b];
    for (int i = 0; i < kDim; ++i) {
      p[i] = center[b][i] + rng.NextGaussian() * s;
    }
    Clamp(kDim, p);
    data.Add(p);
  }
  for (size_t k = 0; k < noise_points; ++k) {
    UniformPoint(&rng, kDim, p);
    data.Add(p);
  }
  return data;
}

Dataset HouseholdLike(size_t n, uint64_t seed) {
  constexpr int kDim = 7;
  constexpr int kRegimes = 10;  // appliance usage regimes
  Rng rng(seed);
  Dataset data(kDim);
  data.Reserve(n);

  // Each regime: an offset plus a direction; points slide along the
  // direction with a regime-specific intensity (axis-correlated bands).
  double offset[kRegimes][kDim];
  double direction[kRegimes][kDim];
  double thickness[kRegimes];
  for (int r = 0; r < kRegimes; ++r) {
    UniformPoint(&rng, kDim, offset[r]);
    double norm2 = 0.0;
    for (int i = 0; i < kDim; ++i) {
      direction[r][i] = rng.NextGaussian();
      norm2 += direction[r][i] * direction[r][i];
    }
    const double inv = 1.0 / std::sqrt(norm2);
    for (int i = 0; i < kDim; ++i) direction[r][i] *= inv;
    thickness[r] = rng.NextDouble(60.0, 300.0);
  }

  const size_t noise_points = n / 40;  // 2.5% irregular usage
  const size_t cluster_points = n - noise_points;
  double p[kDim];
  for (size_t k = 0; k < cluster_points; ++k) {
    const int r = static_cast<int>(rng.NextBounded(kRegimes));
    // Intensity concentrates near a few recurring set-points (dense modes
    // along the band).
    const double mode_center = 4000.0 * rng.NextBounded(5);
    const double t = mode_center + rng.NextGaussian() * 1500.0;
    for (int i = 0; i < kDim; ++i) {
      p[i] = offset[r][i] + direction[r][i] * t +
             rng.NextGaussian() * thickness[r];
    }
    Clamp(kDim, p);
    data.Add(p);
  }
  for (size_t k = 0; k < noise_points; ++k) {
    UniformPoint(&rng, kDim, p);
    data.Add(p);
  }
  return data;
}

}  // namespace adbscan
