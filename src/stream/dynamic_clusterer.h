#ifndef ADBSCAN_STREAM_DYNAMIC_CLUSTERER_H_
#define ADBSCAN_STREAM_DYNAMIC_CLUSTERER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/dbscan_types.h"
#include "ds/union_find.h"
#include "geom/dataset.h"
#include "grid/cell.h"
#include "grid/grid.h"
#include "index/kdtree.h"
#include "rangecount/approx_range_counter.h"

namespace adbscan {

// Tuning knobs of the incremental maintenance. The defaults keep every
// supported workload correct; they only trade update latency against the
// cost of the periodic reorganizations.
struct DynamicClustererOptions {
  // Approximation parameter of the maintained clustering (Theorem 4 / the
  // Lemma 5 counting structures), identical in meaning to the rho argument
  // of ApproxDbscan.
  double rho = 0.001;

  // Snapshot rebuild threshold: when the number of applied updates since the
  // last compaction exceeds this fraction of the surviving points, the next
  // batch first compacts the overlay into a fresh Morton/CSR snapshot
  // (counted by stream.rebuilds).
  double rebuild_threshold = 0.25;

  // Localized-recompute threshold: when a deletion batch would have to
  // revisit more than this fraction of the core cells to re-derive the
  // affected components, fall back to one full component rebuild instead
  // (counted by stream.frontier_fallbacks).
  double recompute_frontier_limit = 0.5;

  // Floor (in applied updates) under which rebuild_threshold never
  // triggers, so tiny collections are not compacted on every batch.
  size_t min_rebuild_ops = 64;
};

// Incremental ρ-approximate DBSCAN (the Theorem 4 pipeline) under point
// insertions and tombstone deletions.
//
// Contract: after any interleaving of Insert/Remove batches, Labels() — and
// therefore Snapshot().clustering — is IDENTICAL (bit-for-bit: labels,
// core flags, extra memberships, cluster numbering) to a from-scratch
// ApproxDbscan run over the surviving points with the same eps / MinPts /
// rho, for every thread count. This works because every quantity
// the pipeline derives is a deterministic function of the surviving
// coordinate multiset:
//
//  - Exact core status depends only on the ε-neighborhood count, and the
//    pipeline's per-cell box shortcuts are FP-monotone consistent with the
//    per-point predicate d²(p,q) <= eps², so maintaining exact counts under
//    commutative increments reproduces the flags.
//  - The Lemma 5 range-count structures depend only on coordinates (cells
//    are origin-aligned), so an edge probe gives the same answer whether the
//    structure was built over global or compacted ids. Probe direction (the
//    Morton-lower cell probes its core points against the Morton-higher
//    cell's structure) depends only on coordinates.
//  - Connected components of the certified edge relation, cluster numbering
//    by first core point in ascending id order, and the border predicates
//    are all id-order preserving under tombstone compaction.
//
// Structure: an append-only point log with an alive bitmap; a coordinate-
// keyed dynamic cell table acting as a mutable overlay over a compacted
// Morton/CSR Grid snapshot (rebuilt past rebuild_threshold); per-core-cell
// ApproxRangeCounter structures rebuilt lazily by version; an explicit
// core-cell adjacency maintained through the concurrent union-find for
// edge additions and a bounded localized component recompute for deletions.
// Batches are routed through the task pool (ParallelFor) in every
// order-insensitive phase. Only exact core counting is supported (the
// ApproxDbscanOptions default).
//
// Synchronization boundaries (the contract the serving layer builds on):
//   - Mutators — Insert, Remove, and the non-const Labels()/Snapshot()
//     overloads (which may lazily recompute labels) — require exclusive
//     access, like any container: one mutator at a time, no concurrent
//     readers.
//   - After a non-const Labels() (or Snapshot()) call returns, the object
//     is in a "published" state: labels are materialized and every const
//     member — dim/params/options, num_points/num_alive/alive/point, and
//     the const Labels()/Snapshot() overloads — only reads, so any number
//     of threads may call them concurrently until the next mutator runs.
//     The caller provides the happens-before edge between the publishing
//     mutator and the readers (e.g. a mutex release, or publishing an
//     epoch snapshot pointer as src/serve/session_manager.cc does).
//   - The const overloads never recompute: calling one while labels are
//     stale (mutated since the last non-const Labels()) aborts rather than
//     returning stale data.
class DynamicClusterer {
 public:
  DynamicClusterer(int dim, const DbscanParams& params,
                   const DynamicClustererOptions& options = {});
  ~DynamicClusterer();

  DynamicClusterer(const DynamicClusterer&) = delete;
  DynamicClusterer& operator=(const DynamicClusterer&) = delete;

  // Appends every point of `batch` (batch.dim() must match) and returns the
  // id assigned to the first one; ids are dense, ascending, and never
  // recycled. O(batch · ε-shell) plus amortized reorganization.
  uint32_t Insert(const Dataset& batch);

  // Tombstones the given ids, which must be alive and distinct. The points'
  // coordinates remain addressable (point ids are stable) but they no
  // longer participate in the clustering.
  void Remove(const std::vector<uint32_t>& ids);

  int dim() const { return dim_; }
  const DbscanParams& params() const { return params_; }
  const DynamicClustererOptions& options() const { return opts_; }
  size_t num_points() const { return points_.size(); }
  size_t num_alive() const { return num_alive_; }
  bool alive(uint32_t id) const { return alive_[id] != 0; }
  const double* point(uint32_t id) const { return points_.point(id); }

  // The maintained clustering over the GLOBAL id space [0, num_points()):
  // dead points are noise and not core. Valid until the next Insert/Remove.
  // Recomputes lazily, so this overload is a mutator (exclusive access).
  const Clustering& Labels();

  // Read-only view of the already-materialized clustering: requires that a
  // non-const Labels()/Snapshot() ran after the last Insert/Remove (aborts
  // otherwise — it never recomputes and never returns stale labels). Safe
  // to call from many threads concurrently; see the class comment.
  const Clustering& Labels() const;

  // True when the const read path is currently usable (labels materialized
  // since the last mutation).
  bool labels_current() const { return labels_valid_; }

  // The surviving points compacted to dense ids (ascending global order)
  // plus the clustering re-indexed to match — directly comparable to
  // ApproxDbscan(points, params, rho).
  struct SnapshotView {
    std::vector<uint32_t> ids;  // surviving global ids, ascending
    Dataset points;             // row i = point(ids[i])
    Clustering clustering;      // over compacted indices
    explicit SnapshotView(int dim) : points(dim) {}
  };
  SnapshotView Snapshot();

  // Const counterpart of Snapshot() with the same contract as the const
  // Labels() overload: requires materialized labels, reads only.
  SnapshotView Snapshot() const;

 private:
  struct Cell {
    CellCoord coord;
    std::vector<uint32_t> members;  // alive ids, ascending
    std::vector<uint32_t> core;     // alive core ids, ascending
    uint64_t core_version = 0;
    uint64_t counter_version = ~uint64_t{0};  // version counter was built at
    std::unique_ptr<ApproxRangeCounter> counter;
    std::vector<uint32_t> adj;  // certified edges to other core cells, sorted
    uint32_t snap_cell = Grid::kNoCell;  // index in snap_grid_, if any
    bool in_overlay = false;
  };

  uint32_t GetOrCreateCell(const CellCoord& cc);
  // Non-empty cells whose extent intersects B(q, eps): snapshot cells via
  // the snapshot's center tree, overlay cells by exact box filter.
  void TouchingCells(const double* q, std::vector<uint32_t>* out) const;
  // Non-empty cells other than ci whose extent is within eps of ci's
  // extent (the ε-neighbor cells a from-scratch grid would enumerate).
  void NeighborCells(uint32_t ci, std::vector<uint32_t>* out) const;
  // True when cell a precedes cell b in the grid's Morton enumeration
  // order — which fixes the edge-probe direction.
  bool CellPrecedes(uint32_t a, uint32_t b) const;
  // Rebuilds ci's counter if its core set changed since the last build.
  void EnsureCounter(uint32_t ci);
  // Probes the pair exactly like the from-scratch edge_test hook. Requires
  // the probe target's counter to be fresh (EnsureCounter).
  bool EdgeProbe(uint32_t a, uint32_t b) const;
  // Decides the (a, b) edge by exact geometry when that is conclusive:
  // returns 1 (some core pair within eps — the counter probe cannot miss
  // it), 0 (a completed scan found no core pair within (1+rho)*eps — the
  // counter probe cannot count one), or -1 (a pair landed inside the
  // approximation band, or the scan ran over budget: only the real counter
  // reproduces the from-scratch decision). Lets most probes skip the
  // counter rebuild entirely.
  int ExactEdgeCertificate(uint32_t a, uint32_t b) const;

  void MaybeCompact();
  void Compact();
  void MaybeRebuildOverlayIndex();

  // Re-derives core flags, core sets, counters, adjacency, and components
  // after a batch touched `touched_cells` (cells whose members' counts may
  // have changed). `forced_core_dirty` cells rebuild their core vector even
  // without a flag flip (a core member was tombstoned).
  void Refresh(std::vector<uint32_t> touched_cells,
               const std::vector<uint32_t>& forced_core_dirty);

  int dim_;
  DbscanParams params_;
  DynamicClustererOptions opts_;
  double side_;
  double eps2_;
  double band_eps2_;  // ((1+rho) * eps)^2, upper edge of the probe band
  size_t min_pts_;

  // Append-only point log; ids are stable forever.
  Dataset points_;
  std::vector<char> alive_;
  std::vector<uint32_t> count_;  // |B(p, ε)| over alive points, self included
  std::vector<char> is_core_;
  std::vector<uint32_t> cell_of_;  // dynamic cell id per point
  size_t num_alive_ = 0;

  // Dynamic cell table; ids are stable (never recycled, survive compaction).
  std::vector<Cell> cells_;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> cell_ids_;

  // Compacted snapshot (spatial accelerator only; membership lives in
  // cells_) plus the post-snapshot overlay and its center index.
  std::unique_ptr<Dataset> snap_data_;
  std::unique_ptr<Grid> snap_grid_;
  std::vector<uint32_t> snap_to_dyn_;    // snapshot cell -> dynamic cell
  std::vector<uint32_t> overlay_cells_;  // dynamic ids not in the snapshot
  std::unique_ptr<Dataset> overlay_centers_;
  std::unique_ptr<KdTree> overlay_tree_;
  size_t overlay_indexed_ = 0;  // prefix of overlay_cells_ in the tree
  size_t ops_since_snapshot_ = 0;

  // Components of the core-cell graph over dynamic cell ids. Invariant:
  // only currently-core cells are ever united, so every non-core cell is a
  // singleton (deletion batches rebuild; insertion batches only add edges
  // between core cells).
  std::unique_ptr<UnionFind> uf_;

  bool labels_valid_ = false;
  Clustering labels_;
};

}  // namespace adbscan

#endif  // ADBSCAN_STREAM_DYNAMIC_CLUSTERER_H_
