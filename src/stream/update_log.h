#ifndef ADBSCAN_STREAM_UPDATE_LOG_H_
#define ADBSCAN_STREAM_UPDATE_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace adbscan {

// One parsed update-log operation. Insertions carry an inline coordinate
// row; removals reference the global id that a previous insertion was
// assigned (ids are handed out densely, in file order, starting at 0, so a
// log is self-contained). A flush marks a batch boundary: the replay driver
// applies everything buffered since the previous flush as one batch.
struct UpdateOp {
  enum class Kind { kInsert, kRemove, kFlush };
  Kind kind = Kind::kInsert;
  std::vector<double> coords;  // kInsert: exactly dim values
  uint32_t id = 0;             // kRemove: global id to tombstone
};

struct UpdateLog {
  int dim = 0;
  std::vector<UpdateOp> ops;
  size_t num_inserts = 0;
  size_t num_removes = 0;
};

// Parses a textual update log:
//
//   a <x1> ... <xd>   insert a point (d = dim values)
//   r <id>            remove the point the id-th insertion created
//   f                 flush (batch boundary)
//
// Blank lines and lines starting with '#' are skipped. Returns nullopt and
// fills *error (with a line number) on any malformed line, unreadable file,
// removal of an id never inserted, or duplicate removal — it never aborts,
// so CLI callers can report and exit cleanly.
std::optional<UpdateLog> TryReadUpdateLog(const std::string& path, int dim,
                                          std::string* error);

}  // namespace adbscan

#endif  // ADBSCAN_STREAM_UPDATE_LOG_H_
