#include "stream/update_log.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace adbscan {
namespace {

bool ParseStrictDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

bool ParseStrictU32(const std::string& token, uint32_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || token[0] == '-') return false;
  if (v > 0xffffffffull) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

std::optional<UpdateLog> Fail(std::string* error, size_t line_no,
                              const std::string& what) {
  std::ostringstream os;
  os << "update log line " << line_no << ": " << what;
  *error = os.str();
  return std::nullopt;
}

}  // namespace

std::optional<UpdateLog> TryReadUpdateLog(const std::string& path, int dim,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open update log: " + path;
    return std::nullopt;
  }
  UpdateLog log;
  log.dim = dim;
  std::vector<char> removed;  // per assigned insert id
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op) || op[0] == '#') continue;
    if (op == "a") {
      UpdateOp add;
      add.kind = UpdateOp::Kind::kInsert;
      add.coords.resize(dim);
      std::string token;
      for (int i = 0; i < dim; ++i) {
        if (!(tokens >> token) || !ParseStrictDouble(token, &add.coords[i])) {
          return Fail(error, line_no, "expected " + std::to_string(dim) +
                                          " numeric coordinates after 'a'");
        }
      }
      if (tokens >> token) {
        return Fail(error, line_no, "trailing tokens after coordinates");
      }
      removed.push_back(0);
      ++log.num_inserts;
      log.ops.push_back(std::move(add));
    } else if (op == "r") {
      UpdateOp rm;
      rm.kind = UpdateOp::Kind::kRemove;
      std::string token;
      if (!(tokens >> token) || !ParseStrictU32(token, &rm.id)) {
        return Fail(error, line_no, "expected a non-negative id after 'r'");
      }
      if (rm.id >= removed.size()) {
        return Fail(error, line_no,
                    "id " + std::to_string(rm.id) + " not inserted yet");
      }
      if (removed[rm.id]) {
        return Fail(error, line_no,
                    "id " + std::to_string(rm.id) + " removed twice");
      }
      removed[rm.id] = 1;
      ++log.num_removes;
      log.ops.push_back(std::move(rm));
    } else if (op == "f") {
      UpdateOp flush;
      flush.kind = UpdateOp::Kind::kFlush;
      log.ops.push_back(flush);
    } else {
      return Fail(error, line_no, "unknown op '" + op + "' (want a, r, or f)");
    }
  }
  return log;
}

}  // namespace adbscan
