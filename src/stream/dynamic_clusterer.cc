#include "stream/dynamic_clusterer.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "geom/box.h"
#include "geom/kernels.h"
#include "geom/point.h"
#include "geom/soa.h"
#include "grid/morton.h"
#include "grid/stencil.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

bool ContainsSorted(const std::vector<uint32_t>& v, uint32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void InsertSorted(std::vector<uint32_t>* v, uint32_t x) {
  v->insert(std::lower_bound(v->begin(), v->end(), x), x);
}

void EraseSorted(std::vector<uint32_t>* v, uint32_t x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  ADB_DCHECK(it != v->end() && *it == x);
  v->erase(it);
}

uint64_t PairKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

DynamicClusterer::DynamicClusterer(int dim, const DbscanParams& params,
                                   const DynamicClustererOptions& options)
    : dim_(dim),
      params_(params),
      opts_(options),
      side_(Grid::SideFor(params.eps, dim)),
      eps2_(params.eps * params.eps),
      band_eps2_((1.0 + options.rho) * params.eps * (1.0 + options.rho) *
                 params.eps),
      min_pts_(static_cast<size_t>(params.min_pts)),
      points_(dim),
      uf_(std::make_unique<UnionFind>(0)) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  ADB_CHECK(opts_.rho > 0.0);
  ADB_CHECK(opts_.rebuild_threshold > 0.0);
  ADB_CHECK(opts_.recompute_frontier_limit >= 0.0);
  // Register the stream counter schema up front so every exported record
  // carries the same names even before the corresponding path first fires.
  ADB_COUNT("stream.updates", 0);
  ADB_COUNT("stream.inserts", 0);
  ADB_COUNT("stream.removes", 0);
  ADB_COUNT("stream.batches", 0);
  ADB_COUNT("stream.cells_touched", 0);
  ADB_COUNT("stream.rebuilds", 0);
  ADB_COUNT("stream.recompute_frontier", 0);
  ADB_COUNT("stream.frontier_fallbacks", 0);
  ADB_COUNT("stream.edge_probes", 0);
  ADB_COUNT("stream.counter_rebuilds", 0);
}

DynamicClusterer::~DynamicClusterer() = default;

uint32_t DynamicClusterer::GetOrCreateCell(const CellCoord& cc) {
  const uint32_t next_id = static_cast<uint32_t>(cells_.size());
  auto [it, inserted] = cell_ids_.try_emplace(cc, next_id);
  const uint32_t id = it->second;
  if (inserted) {
    cells_.emplace_back();
    cells_.back().coord = cc;
    cells_.back().in_overlay = true;
    overlay_cells_.push_back(id);
  } else if (!cells_[id].in_overlay && cells_[id].snap_cell == Grid::kNoCell) {
    // The cell existed before, emptied out, and a compaction ran while it
    // was empty (dropping it from both the snapshot and the overlay list).
    // Now it is being refilled, so it must be reachable again.
    cells_[id].in_overlay = true;
    overlay_cells_.push_back(id);
  }
  return id;
}

void DynamicClusterer::TouchingCells(const double* q,
                                     std::vector<uint32_t>* out) const {
  out->clear();
  if (snap_grid_) {
    for (uint32_t sc : snap_grid_->CellsTouchingBall(q, params_.eps)) {
      const uint32_t dc = snap_to_dyn_[sc];
      if (!cells_[dc].members.empty()) out->push_back(dc);
    }
  }
  auto consider = [&](uint32_t dc) {
    if (cells_[dc].members.empty()) return;
    if (cells_[dc].coord.ToBox(side_).MinSquaredDistToPoint(q) <= eps2_) {
      out->push_back(dc);
    }
  };
  if (overlay_tree_) {
    // Same candidate radius as Grid::CellsTouchingBall, then the same exact
    // box filter inside consider().
    const double diam = side_ * std::sqrt(static_cast<double>(dim_));
    const double radius = params_.eps + 0.5 * diam + 1e-9 * side_;
    for (uint32_t row : overlay_tree_->RangeQuery(q, radius)) {
      consider(overlay_cells_[row]);
    }
  }
  for (size_t k = overlay_indexed_; k < overlay_cells_.size(); ++k) {
    consider(overlay_cells_[k]);
  }
}

void DynamicClusterer::NeighborCells(uint32_t ci,
                                     std::vector<uint32_t>* out) const {
  out->clear();
  const Cell& cell = cells_[ci];
  if (snap_grid_) {
    if (cell.snap_cell != Grid::kNoCell) {
      for (uint32_t sc :
           snap_grid_->EpsNeighbors(cell.snap_cell, params_.eps)) {
        const uint32_t dc = snap_to_dyn_[sc];
        if (!cells_[dc].members.empty()) out->push_back(dc);
      }
    } else {
      for (uint32_t sc : snap_grid_->CellsNearCoord(cell.coord, params_.eps)) {
        const uint32_t dc = snap_to_dyn_[sc];
        if (dc != ci && !cells_[dc].members.empty()) out->push_back(dc);
      }
    }
  }
  // Overlay cells are filtered by the same canonical corner-distance
  // predicate the snapshot grid's EpsNeighbors uses, so overlay and
  // snapshot decisions always agree.
  auto consider = [&](uint32_t dc) {
    if (dc == ci || cells_[dc].members.empty()) return;
    if (CellPairDist2(cell.coord, cells_[dc].coord, side_) <= eps2_) {
      out->push_back(dc);
    }
  };
  if (overlay_tree_) {
    const double diam = side_ * std::sqrt(static_cast<double>(dim_));
    const double radius = params_.eps + diam + 1e-9 * side_;
    double center[kMaxDim];
    cell.coord.Center(side_, center);
    for (uint32_t row : overlay_tree_->RangeQuery(center, radius)) {
      consider(overlay_cells_[row]);
    }
  }
  for (size_t k = overlay_indexed_; k < overlay_cells_.size(); ++k) {
    consider(overlay_cells_[k]);
  }
}

bool DynamicClusterer::CellPrecedes(uint32_t a, uint32_t b) const {
  return MortonLess(cells_[a].coord.c.data(), cells_[b].coord.c.data(), dim_);
}

void DynamicClusterer::EnsureCounter(uint32_t ci) {
  Cell& cell = cells_[ci];
  if (cell.counter != nullptr && cell.counter_version == cell.core_version) {
    return;
  }
  // The structure depends only on the coordinate multiset of the core set
  // (cells are origin-aligned), so building it over global ids answers
  // queries identically to the from-scratch structure over compacted ids.
  cell.counter = std::make_unique<ApproxRangeCounter>(points_, cell.core,
                                                      params_.eps, opts_.rho);
  cell.counter_version = cell.core_version;
  ADB_COUNT("stream.counter_rebuilds", 1);
}

int DynamicClusterer::ExactEdgeCertificate(uint32_t a, uint32_t b) const {
  // Distance evaluations allowed per pair before giving up on the exact
  // scan. Intra-cluster neighbor cells hit within a handful of probes; the
  // budget only matters for large, genuinely-far cell pairs, which fall
  // back to the counter.
  constexpr size_t kBudget = 4096;
  const std::vector<uint32_t>& pa = cells_[a].core;
  const std::vector<uint32_t>& pb = cells_[b].core;
  size_t budget = kBudget;
  bool marginal = false;
  for (uint32_t p : pa) {
    const double* pp = points_.point(p);
    for (uint32_t q : pb) {
      const double d2 = SquaredDistance(pp, points_.point(q), dim_);
      if (d2 <= eps2_) return 1;
      if (d2 <= band_eps2_) marginal = true;
      if (--budget == 0) return -1;
    }
  }
  return marginal ? -1 : 0;
}

bool DynamicClusterer::EdgeProbe(uint32_t a, uint32_t b) const {
  // Replicates the from-scratch edge_test direction: the pipeline visits
  // pairs (c1, c2) with c1 < c2 in core-cell index order — which is the
  // grid's cell order — and probes c1's core points against c2's structure.
  const uint32_t lo = CellPrecedes(a, b) ? a : b;
  const uint32_t hi = lo == a ? b : a;
  ADB_DCHECK(cells_[hi].counter != nullptr &&
             cells_[hi].counter_version == cells_[hi].core_version);
  const ApproxRangeCounter& counter = *cells_[hi].counter;
  for (uint32_t p : cells_[lo].core) {
    if (counter.QueryNonzero(points_.point(p))) return true;
  }
  return false;
}

void DynamicClusterer::MaybeCompact() {
  const double threshold =
      std::max(static_cast<double>(opts_.min_rebuild_ops),
               opts_.rebuild_threshold * static_cast<double>(num_alive_));
  if (static_cast<double>(ops_since_snapshot_) <= threshold) return;
  Compact();
}

void DynamicClusterer::Compact() {
  ADB_PHASE("stream.compact");
  ADB_TRACE_INSTANT("stream.rebuild");
  ADB_COUNT("stream.rebuilds", 1);
  ops_since_snapshot_ = 0;
  for (Cell& cell : cells_) {
    cell.snap_cell = Grid::kNoCell;
    cell.in_overlay = false;
  }
  overlay_cells_.clear();
  overlay_tree_.reset();
  overlay_centers_.reset();
  overlay_indexed_ = 0;
  if (num_alive_ == 0) {
    snap_grid_.reset();
    snap_data_.reset();
    snap_to_dyn_.clear();
    return;
  }
  auto data = std::make_unique<Dataset>(dim_);
  data->Reserve(num_alive_);
  for (uint32_t id = 0; id < points_.size(); ++id) {
    if (alive_[id]) data->Add(points_.point(id));
  }
  auto grid = std::make_unique<Grid>(*data, side_);
  snap_to_dyn_.assign(grid->NumCells(), 0);
  for (uint32_t sc = 0; sc < static_cast<uint32_t>(grid->NumCells()); ++sc) {
    auto it = cell_ids_.find(grid->CellCoordOf(sc));
    ADB_DCHECK(it != cell_ids_.end());
    snap_to_dyn_[sc] = it->second;
    cells_[it->second].snap_cell = sc;
  }
  // The old snapshot grid (if any) is destroyed after the new one exists, so
  // the dataset a grid points at always outlives it.
  snap_grid_ = std::move(grid);
  snap_data_ = std::move(data);
  if (params_.num_threads > 1) {
    snap_grid_->WarmNeighborCache(params_.eps, params_.num_threads);
  }
}

void DynamicClusterer::MaybeRebuildOverlayIndex() {
  const size_t unindexed = overlay_cells_.size() - overlay_indexed_;
  if (unindexed <= std::max<size_t>(64, overlay_indexed_ / 4)) return;
  overlay_centers_ = std::make_unique<Dataset>(dim_);
  overlay_centers_->Reserve(overlay_cells_.size());
  double center[kMaxDim];
  for (uint32_t dc : overlay_cells_) {
    cells_[dc].coord.Center(side_, center);
    overlay_centers_->Add(center);
  }
  overlay_tree_ = std::make_unique<KdTree>(*overlay_centers_);
  overlay_indexed_ = overlay_cells_.size();
}

uint32_t DynamicClusterer::Insert(const Dataset& batch) {
  ADB_CHECK(batch.dim() == dim_);
  MaybeCompact();
  const uint32_t first = static_cast<uint32_t>(points_.size());
  const size_t bn = batch.size();
  if (bn == 0) return first;
  ADB_PHASE("stream.insert");
  ADB_COUNT("stream.batches", 1);
  ADB_COUNT("stream.updates", bn);
  ADB_COUNT("stream.inserts", bn);
  labels_valid_ = false;

  points_.Reserve(points_.size() + bn);
  for (size_t i = 0; i < bn; ++i) {
    const uint32_t id = points_.Add(batch.point(i));
    alive_.push_back(1);
    count_.push_back(0);
    is_core_.push_back(0);
    const uint32_t dc =
        GetOrCreateCell(CellCoord::Of(batch.point(i), dim_, side_));
    cells_[dc].members.push_back(id);  // ids are assigned ascending
    cell_of_.push_back(dc);
  }
  num_alive_ += bn;

  // Cells whose members may gain neighbors: everything intersecting
  // B(p, ε) for each new point p. Read-only against the cell table, so the
  // enumeration fans out over the task pool.
  std::vector<std::vector<uint32_t>> touch(bn);
  ParallelFor(bn, params_.num_threads, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      TouchingCells(points_.point(first + static_cast<uint32_t>(i)),
                    &touch[i]);
    }
  });
  size_t touched_total = 0;
  for (const auto& t : touch) touched_total += t.size();
  ADB_COUNT("stream.cells_touched", touched_total);
  ADB_TRACE_COUNTER("stream.cells_touched", touched_total);

  // Invert to per-cell work so the count updates write disjoint slots (a
  // point's count is only ever written by its own cell's work item). Batch
  // indices stay ascending per cell, and the member scan stops at ids >= p:
  // each unordered pair is counted exactly once, from its larger id.
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_cell;
  for (size_t i = 0; i < bn; ++i) {
    for (uint32_t dc : touch[i]) {
      by_cell[dc].push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> cell_work;
  cell_work.reserve(by_cell.size());
  for (auto& entry : by_cell) {
    cell_work.emplace_back(entry.first, std::move(entry.second));
  }
  std::vector<size_t> offset(cell_work.size() + 1, 0);
  for (size_t k = 0; k < cell_work.size(); ++k) {
    offset[k + 1] = offset[k] + cell_work[k].second.size();
  }
  std::vector<uint32_t> gained(offset.back(), 0);

  ParallelFor(cell_work.size(), params_.num_threads,
              [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const uint32_t dc = cell_work[k].first;
      const Cell& cell = cells_[dc];
      const Box box = cell.coord.ToBox(side_);
      for (size_t j = 0; j < cell_work[k].second.size(); ++j) {
        const uint32_t pid = first + cell_work[k].second[j];
        const double* p = points_.point(pid);
        // Same-cell pairs count unconditionally (the pipeline's
        // count = pts.size() rule); a box fully inside B(p, ε) counts
        // whole; both shortcuts are FP-monotone consistent with the
        // per-point predicate, so the effective pair relation is exactly
        // the one the from-scratch labeling evaluates.
        const bool own = cell_of_[pid] == dc;
        const bool full = !own && box.MaxSquaredDistToPoint(p) <= eps2_;
        uint32_t g = 0;
        for (uint32_t q : cell.members) {
          if (q >= pid) break;
          if (own || full ||
              SquaredDistance(p, points_.point(q), dim_) <= eps2_) {
            ++count_[q];
            ++g;
          }
        }
        gained[offset[k] + j] = g;
      }
    }
  });
  for (size_t k = 0; k < cell_work.size(); ++k) {
    for (size_t j = 0; j < cell_work[k].second.size(); ++j) {
      count_[first + cell_work[k].second[j]] += gained[offset[k] + j];
    }
  }
  for (size_t i = 0; i < bn; ++i) {
    count_[first + i] += 1;  // a point is its own ε-neighbor
  }

  std::vector<uint32_t> touched;
  touched.reserve(cell_work.size());
  for (const auto& entry : cell_work) touched.push_back(entry.first);
  std::sort(touched.begin(), touched.end());

  ops_since_snapshot_ += bn;
  Refresh(std::move(touched), {});
  MaybeRebuildOverlayIndex();
  return first;
}

void DynamicClusterer::Remove(const std::vector<uint32_t>& ids) {
  if (ids.empty()) return;
  MaybeCompact();
  ADB_PHASE("stream.remove");
  ADB_COUNT("stream.batches", 1);
  ADB_COUNT("stream.updates", ids.size());
  ADB_COUNT("stream.removes", ids.size());
  labels_valid_ = false;

  std::vector<uint32_t> forced_core_dirty;
  std::vector<uint32_t> removal_cells;
  for (uint32_t id : ids) {
    ADB_CHECK(id < points_.size());
    ADB_CHECK_MSG(alive_[id] != 0, "Remove: id is dead or duplicated");
    const uint32_t dc = cell_of_[id];
    Cell& cell = cells_[dc];
    EraseSorted(&cell.members, id);
    alive_[id] = 0;
    count_[id] = 0;
    if (is_core_[id]) {
      is_core_[id] = 0;
      forced_core_dirty.push_back(dc);
    }
    removal_cells.push_back(dc);
  }
  num_alive_ -= ids.size();

  // Tombstoned first, decremented second: pairs between two removed points
  // never touch a surviving count, and every (removed, surviving) pair
  // decrements the survivor exactly once.
  const size_t bn = ids.size();
  std::vector<std::vector<uint32_t>> touch(bn);
  ParallelFor(bn, params_.num_threads, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      TouchingCells(points_.point(ids[i]), &touch[i]);
    }
  });
  size_t touched_total = 0;
  for (const auto& t : touch) touched_total += t.size();
  ADB_COUNT("stream.cells_touched", touched_total);
  ADB_TRACE_COUNTER("stream.cells_touched", touched_total);

  std::unordered_map<uint32_t, std::vector<uint32_t>> by_cell;
  for (size_t i = 0; i < bn; ++i) {
    for (uint32_t dc : touch[i]) {
      by_cell[dc].push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> cell_work;
  cell_work.reserve(by_cell.size());
  for (auto& entry : by_cell) {
    cell_work.emplace_back(entry.first, std::move(entry.second));
  }
  ParallelFor(cell_work.size(), params_.num_threads,
              [&](size_t begin, size_t end) {
    std::vector<uint32_t> others;
    for (size_t k = begin; k < end; ++k) {
      const uint32_t dc = cell_work[k].first;
      const Cell& cell = cells_[dc];
      // Same-cell pairs count unconditionally (the pipeline's own-cell
      // rule); the rest are plain ε tests, symmetric in IEEE, so counting
      // dead points around each survivor decrements exactly the pairs the
      // insert path incremented.
      uint32_t own_count = 0;
      others.clear();
      for (uint32_t i : cell_work[k].second) {
        const uint32_t pid = ids[i];
        if (cell_of_[pid] == dc) {
          ++own_count;
        } else {
          others.push_back(pid);
        }
      }
      if (others.size() >= 2 * simd::kLaneWidth) {
        const simd::SoaBlock dead(points_, others.data(), others.size());
        const simd::SoaSpan span = dead.span();
        for (uint32_t q : cell.members) {
          const uint32_t dec =
              own_count + static_cast<uint32_t>(CountWithin(
                              points_.point(q), span, eps2_, SIZE_MAX));
          if (dec != 0) count_[q] -= dec;
        }
      } else {
        for (uint32_t q : cell.members) {
          const double* pq = points_.point(q);
          uint32_t dec = own_count;
          for (uint32_t pid : others) {
            if (SquaredDistance(pq, points_.point(pid), dim_) <= eps2_) {
              ++dec;
            }
          }
          if (dec != 0) count_[q] -= dec;
        }
      }
    }
  });

  std::vector<uint32_t> touched;
  touched.reserve(cell_work.size() + removal_cells.size());
  for (const auto& entry : cell_work) touched.push_back(entry.first);
  // A removed point's own cell may have become empty (and so absent from
  // every touch list), but its core vector still needs the fixup pass.
  touched.insert(touched.end(), removal_cells.begin(), removal_cells.end());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  ops_since_snapshot_ += bn;
  Refresh(std::move(touched), forced_core_dirty);
  MaybeRebuildOverlayIndex();
}

void DynamicClusterer::Refresh(std::vector<uint32_t> touched,
                               const std::vector<uint32_t>& forced_core_dirty) {
  ADB_PHASE("stream.refresh");

  // Core flag flips. Each work item writes only its own cell's members'
  // flags — a point belongs to exactly one cell — so the scan fans out.
  std::vector<char> flipped(touched.size(), 0);
  ParallelFor(touched.size(), params_.num_threads,
              [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      bool any = false;
      for (uint32_t q : cells_[touched[k]].members) {
        const char now_core = count_[q] >= min_pts_ ? 1 : 0;
        if (now_core != is_core_[q]) {
          is_core_[q] = now_core;
          any = true;
        }
      }
      flipped[k] = any;
    }
  });

  // Rebuild core vectors where a flag flipped or a core member left.
  std::vector<uint32_t> candidates;
  for (size_t k = 0; k < touched.size(); ++k) {
    if (flipped[k]) candidates.push_back(touched[k]);
  }
  candidates.insert(candidates.end(), forced_core_dirty.begin(),
                    forced_core_dirty.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<std::vector<uint32_t>> new_core(candidates.size());
  std::vector<char> core_changed(candidates.size(), 0);
  ParallelFor(candidates.size(), params_.num_threads,
              [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      const Cell& cell = cells_[candidates[k]];
      for (uint32_t q : cell.members) {
        if (is_core_[q]) new_core[k].push_back(q);
      }
      core_changed[k] = new_core[k] != cell.core ? 1 : 0;
    }
  });

  // The edge-dirty set: cells whose core set changed (their pairs must be
  // re-certified).
  std::vector<uint32_t> dirty;
  std::vector<char> dirty_was_core;
  for (size_t k = 0; k < candidates.size(); ++k) {
    if (!core_changed[k]) continue;
    Cell& cell = cells_[candidates[k]];
    dirty.push_back(candidates[k]);
    dirty_was_core.push_back(cell.core.empty() ? 0 : 1);
    cell.core = std::move(new_core[k]);
    ++cell.core_version;
  }
  uf_->Grow(static_cast<uint32_t>(cells_.size()));
  if (dirty.empty()) return;

  // Cells that ceased to be core retract all their edges.
  bool edge_removed = false;
  std::vector<std::pair<uint32_t, uint32_t>> removed_edges;
  std::vector<std::pair<uint32_t, uint32_t>> added_edges;
  for (size_t k = 0; k < dirty.size(); ++k) {
    Cell& cell = cells_[dirty[k]];
    if (!cell.core.empty() || !dirty_was_core[k]) continue;
    for (uint32_t other : cell.adj) {
      EraseSorted(&cells_[other].adj, dirty[k]);
      removed_edges.emplace_back(dirty[k], other);
      edge_removed = true;
    }
    cell.adj.clear();
  }

  // Re-probe every pair incident to a still-core dirty cell. A certified
  // edge only ever exists between geometric ε-neighbor cells, so the
  // neighbor enumeration covers every stale adjacency entry too.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  std::unordered_set<uint64_t> pair_seen;
  std::vector<uint32_t> nbr;
  for (uint32_t dc : dirty) {
    if (cells_[dc].core.empty()) continue;
    NeighborCells(dc, &nbr);
    for (uint32_t other : nbr) {
      if (cells_[other].core.empty()) continue;
      if (pair_seen.insert(PairKey(dc, other)).second) {
        pairs.emplace_back(std::min(dc, other), std::max(dc, other));
      }
    }
  }
  ADB_COUNT("stream.edge_probes", pairs.size());

  // Most pairs are decided by the exact certificate; only pairs landing
  // inside the approximation band (or too large to scan) pay for a Lemma 5
  // structure rebuild.
  std::vector<char> has_edge(pairs.size(), 0);
  std::vector<uint32_t> undecided;
  {
    ADB_PHASE("stream.refresh.certify");
    std::vector<signed char> cert(pairs.size(), -1);
    ParallelFor(pairs.size(), params_.num_threads,
                [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        cert[k] = static_cast<signed char>(
            ExactEdgeCertificate(pairs[k].first, pairs[k].second));
      }
    });
    for (size_t k = 0; k < pairs.size(); ++k) {
      if (cert[k] < 0) {
        undecided.push_back(static_cast<uint32_t>(k));
      } else {
        has_edge[k] = static_cast<char>(cert[k]);
      }
    }
  }
  if (!undecided.empty()) {
    // Fresh Lemma 5 structures for every undecided probe target, rebuilt in
    // parallel (each work item owns one cell).
    ADB_PHASE("stream.refresh.counters");
    std::vector<uint32_t> need_counter;
    need_counter.reserve(undecided.size());
    for (uint32_t k : undecided) {
      const auto [a, b] = pairs[k];
      need_counter.push_back(CellPrecedes(a, b) ? b : a);
    }
    std::sort(need_counter.begin(), need_counter.end());
    need_counter.erase(std::unique(need_counter.begin(), need_counter.end()),
                       need_counter.end());
    ParallelFor(need_counter.size(), params_.num_threads,
                [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) EnsureCounter(need_counter[k]);
    });
    ParallelFor(undecided.size(), params_.num_threads,
                [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        const uint32_t pk = undecided[k];
        has_edge[pk] =
            EdgeProbe(pairs[pk].first, pairs[pk].second) ? 1 : 0;
      }
    });
  }
  for (size_t k = 0; k < pairs.size(); ++k) {
    const auto [a, b] = pairs[k];
    const bool had = ContainsSorted(cells_[a].adj, b);
    if (has_edge[k] && !had) {
      InsertSorted(&cells_[a].adj, b);
      InsertSorted(&cells_[b].adj, a);
      added_edges.emplace_back(a, b);
    } else if (!has_edge[k] && had) {
      EraseSorted(&cells_[a].adj, b);
      EraseSorted(&cells_[b].adj, a);
      removed_edges.emplace_back(a, b);
      edge_removed = true;
    }
  }

  if (!edge_removed) {
    // Pure growth (every insertion batch lands here: core sets only grow,
    // probes are monotone, and Morton order is static): the union-find
    // absorbs the new edges in place and components can only merge.
    for (const auto& [a, b] : added_edges) uf_->Union(a, b);
    ADB_COUNT("stream.recompute_frontier", dirty.size());
    return;
  }

  ADB_PHASE("stream.refresh.uf");
  // Localized component recompute. The affected component set is closed:
  // every changed edge is incident to a dirty cell, and every unchanged
  // edge stays inside its old component, so components that contain no
  // dirty cell and no changed-edge endpoint are untouched and can be
  // re-seeded wholesale from their old root.
  std::unordered_set<uint32_t> affected;
  for (size_t k = 0; k < dirty.size(); ++k) {
    if (dirty_was_core[k]) affected.insert(uf_->Find(dirty[k]));
    if (!cells_[dirty[k]].core.empty()) affected.insert(uf_->Find(dirty[k]));
  }
  for (const auto& [a, b] : removed_edges) {
    affected.insert(uf_->Find(a));
    affected.insert(uf_->Find(b));
  }
  for (const auto& [a, b] : added_edges) {
    affected.insert(uf_->Find(a));
    affected.insert(uf_->Find(b));
  }
  std::vector<uint32_t> collect;
  std::vector<std::pair<uint32_t, uint32_t>> keep;  // (cell, old root)
  size_t num_core_cells = 0;
  for (uint32_t dc = 0; dc < static_cast<uint32_t>(cells_.size()); ++dc) {
    if (cells_[dc].core.empty()) continue;
    ++num_core_cells;
    const uint32_t root = uf_->Find(dc);
    if (affected.count(root) != 0) {
      collect.push_back(dc);
    } else {
      keep.emplace_back(dc, root);
    }
  }
  if (static_cast<double>(collect.size()) >
      opts_.recompute_frontier_limit * static_cast<double>(num_core_cells)) {
    // Past the threshold the bookkeeping costs more than it saves: rebuild
    // the components of every core cell from the maintained adjacency.
    ADB_COUNT("stream.frontier_fallbacks", 1);
    ADB_TRACE_INSTANT("stream.frontier_fallback");
    collect.clear();
    keep.clear();
    for (uint32_t dc = 0; dc < static_cast<uint32_t>(cells_.size()); ++dc) {
      if (!cells_[dc].core.empty()) collect.push_back(dc);
    }
  }
  ADB_COUNT("stream.recompute_frontier", collect.size());
  auto fresh = std::make_unique<UnionFind>(static_cast<uint32_t>(cells_.size()));
  for (const auto& [dc, root] : keep) fresh->Union(dc, root);
  for (uint32_t dc : collect) {
    for (uint32_t other : cells_[dc].adj) fresh->Union(dc, other);
  }
  uf_ = std::move(fresh);
}

const Clustering& DynamicClusterer::Labels() const {
  ADB_CHECK_MSG(labels_valid_,
                "const Labels(): labels are stale; run the non-const "
                "Labels() after the last Insert/Remove first");
  return labels_;
}

const Clustering& DynamicClusterer::Labels() {
  if (labels_valid_) return labels_;
  ADB_PHASE("stream.labels");
  const size_t n = points_.size();
  labels_ = Clustering{};
  labels_.label.assign(n, kNoise);
  labels_.is_core.assign(n, 0);
  uf_->Grow(static_cast<uint32_t>(cells_.size()));

  // Cluster numbering by first core point in ascending id order — the exact
  // rule of the from-scratch pipeline, preserved under compaction because
  // tombstoning keeps the relative id order of survivors.
  std::vector<int32_t> root_cluster(cells_.size(), kNoise);
  int32_t next_cluster = 0;
  for (uint32_t id = 0; id < static_cast<uint32_t>(n); ++id) {
    if (!alive_[id] || !is_core_[id]) continue;
    labels_.is_core[id] = 1;
    const uint32_t root = uf_->Find(cell_of_[id]);
    int32_t& cluster = root_cluster[root];
    if (cluster == kNoise) cluster = next_cluster++;
    labels_.label[id] = cluster;
  }
  labels_.num_clusters = next_cluster;
  if (next_cluster == 0) {
    labels_valid_ = true;
    return labels_;
  }

  // Border assignment, mirroring core/border.cc over the dynamic cell
  // table: candidate core cells are the point's own cell plus its
  // ε-neighbors; a box fully outside ε contributes nothing, fully inside
  // hits without a distance evaluation, and the boundary shell scans the
  // candidate's core points with the scalar early-exit loop.
  std::vector<int32_t> cell_cluster(cells_.size(), kNoise);
  for (uint32_t dc = 0; dc < static_cast<uint32_t>(cells_.size()); ++dc) {
    if (!cells_[dc].core.empty()) {
      cell_cluster[dc] = root_cluster[uf_->Find(dc)];
    }
  }
  if (params_.num_threads > 1 && snap_grid_) {
    snap_grid_->WarmNeighborCache(params_.eps, params_.num_threads);
  }
  std::mutex extras_mutex;
  ParallelFor(cells_.size(), params_.num_threads,
              [&](size_t begin, size_t end) {
    std::vector<int32_t> memberships;
    std::vector<uint32_t> nbr;
    std::vector<uint32_t> cand;
    std::vector<Box> cand_box;
    std::vector<std::pair<uint32_t, int32_t>> local_extras;
    for (uint32_t dc = static_cast<uint32_t>(begin); dc < end; ++dc) {
      const Cell& cell = cells_[dc];
      // core is a subset of members, so equal sizes == no non-core member.
      if (cell.members.size() == cell.core.size()) continue;
      NeighborCells(dc, &nbr);
      cand.clear();
      cand_box.clear();
      auto add_candidate = [&](uint32_t other) {
        if (cells_[other].core.empty()) return;
        cand.push_back(other);
        cand_box.push_back(cells_[other].coord.ToBox(side_));
      };
      for (uint32_t other : nbr) add_candidate(other);
      add_candidate(dc);
      if (cand.empty()) continue;
      for (uint32_t id : cell.members) {
        if (is_core_[id]) continue;
        const double* q = points_.point(id);
        memberships.clear();
        for (size_t k = 0; k < cand.size(); ++k) {
          const int32_t cluster = cell_cluster[cand[k]];
          // A cluster already collected needs no second witness.
          if (std::find(memberships.begin(), memberships.end(), cluster) !=
              memberships.end()) {
            continue;
          }
          if (cand_box[k].MinSquaredDistToPoint(q) > eps2_) continue;
          bool hit = cand_box[k].MaxSquaredDistToPoint(q) <= eps2_;
          if (!hit) {
            for (uint32_t core_id : cells_[cand[k]].core) {
              if (SquaredDistance(q, points_.point(core_id), dim_) <= eps2_) {
                hit = true;
                break;
              }
            }
          }
          if (hit) memberships.push_back(cluster);
        }
        if (memberships.empty()) continue;
        std::sort(memberships.begin(), memberships.end());
        labels_.label[id] = memberships.front();
        for (size_t k = 1; k < memberships.size(); ++k) {
          local_extras.emplace_back(id, memberships[k]);
        }
      }
    }
    if (!local_extras.empty()) {
      const std::lock_guard<std::mutex> lock(extras_mutex);
      labels_.extra_memberships.insert(labels_.extra_memberships.end(),
                                       local_extras.begin(),
                                       local_extras.end());
    }
  });
  std::sort(labels_.extra_memberships.begin(), labels_.extra_memberships.end());
  labels_valid_ = true;
  return labels_;
}

DynamicClusterer::SnapshotView DynamicClusterer::Snapshot() {
  Labels();  // materialize lazily (mutator path), then read
  return static_cast<const DynamicClusterer&>(*this).Snapshot();
}

DynamicClusterer::SnapshotView DynamicClusterer::Snapshot() const {
  SnapshotView view(dim_);
  const Clustering& all = Labels();
  view.ids.reserve(num_alive_);
  view.points.Reserve(num_alive_);
  std::vector<uint32_t> compact(points_.size(), 0);
  for (uint32_t id = 0; id < static_cast<uint32_t>(points_.size()); ++id) {
    if (!alive_[id]) continue;
    compact[id] = static_cast<uint32_t>(view.ids.size());
    view.ids.push_back(id);
    view.points.Add(points_.point(id));
  }
  view.clustering.num_clusters = all.num_clusters;
  view.clustering.label.resize(view.ids.size());
  view.clustering.is_core.resize(view.ids.size());
  for (size_t i = 0; i < view.ids.size(); ++i) {
    view.clustering.label[i] = all.label[view.ids[i]];
    view.clustering.is_core[i] = all.is_core[view.ids[i]];
  }
  view.clustering.extra_memberships.reserve(all.extra_memberships.size());
  for (const auto& [gid, cluster] : all.extra_memberships) {
    // Sorted order survives the remap: compaction is monotone in id.
    view.clustering.extra_memberships.emplace_back(compact[gid], cluster);
  }
  return view;
}

}  // namespace adbscan
