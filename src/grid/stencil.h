#ifndef ADBSCAN_GRID_STENCIL_H_
#define ADBSCAN_GRID_STENCIL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "grid/cell.h"

namespace adbscan {

// The ε-neighbor offset stencil of a cell lattice: every integer coordinate
// delta Δ whose box-to-box ("corner") distance can be within ε. The corner
// distance between two cells at delta Δ is position-independent —
//
//   dist²(Δ) = Σ_i (max(|Δ_i| − 1, 0) · side)²
//
// — so the set of candidate deltas, their exact distances, and the
// ascending-distance enumeration order are all computable once per
// (dim, eps, side) and shared by every cell of every grid with that
// geometry. This replaces the kd-tree over cell centers the grid used to
// query per cell: neighbor enumeration becomes a walk of the open-
// addressing cell hash over a precomputed, distance-sorted delta list.
//
// Entries are kept up to the *candidate* limit eps²·(1 + kCandidateSlack):
// the slack prefix [num_neighbor, size) exists so ball queries (point-to-
// box predicates, computed with different FP roundings than the corner
// formula) can use the stencil as a provable candidate superset. The
// neighbor relation itself is the exact prefix [0, num_neighbor):
// dist2[k] ≤ eps², bit-for-bit the same predicate as CellPairDist2 below.
struct NeighborStencil {
  int dim = 0;
  double eps = 0.0;
  double side = 0.0;
  double eps2 = 0.0;    // inclusive neighbor limit (eps·eps)
  double limit2 = 0.0;  // candidate limit: eps2 · (1 + kCandidateSlack)
  int64_t max_abs = 0;  // per-axis |Δ_i| bound over all entries

  // Entry k occupies deltas[k·dim, (k+1)·dim) with corner distance
  // dist2[k]. Entries ascend by dist2, ties in lexicographic delta order;
  // entry 0 is the zero delta (distance 0). group_end delimits the runs of
  // bitwise-equal dist2: group g is [group_end[g-1], group_end[g]).
  std::vector<int32_t> deltas;
  std::vector<double> dist2;
  std::vector<uint32_t> group_end;

  // Number of leading entries with dist2[k] <= eps2 (the ε-neighbor
  // prefix); always a whole number of groups.
  size_t num_neighbor = 0;

  size_t size() const { return dist2.size(); }
  const int32_t* delta(size_t k) const { return deltas.data() + k * dim; }
};

// Relative slack of the candidate limit over eps². Wide enough to absorb
// any plausible rounding discrepancy between the corner formula and the
// box-coordinate predicates (Box::MinSquaredDistToPoint over lattice
// boxes), narrow enough that it only ever admits deltas sitting within
// ulps of the ε boundary.
inline constexpr double kCandidateSlack = 1e-9;

// Entry-count cap above which StencilFor refuses to build (returns null)
// and callers fall back to scanning materialized cells. ~257k entries
// cover d = 7 at the pipelines' side = ε/√d; the cap leaves headroom for
// coarser ratios without letting adversarial (eps, side) pairs allocate
// unbounded tables.
inline constexpr size_t kMaxStencilEntries = size_t{1} << 20;

// The canonical corner distance between two lattice cells, and THE cell-
// pair ε predicate of the whole tree (grid neighbor enumeration, shard
// halo planning, the dynamic clusterer's overlay filters, and the test
// reference sweeps all compute exactly this): per axis i ascending from 0,
// gap = (|a_i − b_i| − 1) · side when |a_i − b_i| > 1 else 0, accumulated
// as sum = sum + gap·gap. Being a pure function of the integer delta, it
// is position-independent — unlike the retired box-coordinate formula,
// whose per-cell roundings could order equal deltas differently.
inline double CellPairDist2(const int64_t* a, const int64_t* b, int dim,
                            double side) {
  double sum = 0.0;
  for (int i = 0; i < dim; ++i) {
    const int64_t d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > 1) {
      const double gap = static_cast<double>(d - 1) * side;
      sum += gap * gap;
    }
  }
  return sum;
}

inline double CellPairDist2(const CellCoord& a, const CellCoord& b,
                            double side) {
  return CellPairDist2(a.c.data(), b.c.data(), a.dim, side);
}

// Early-exit form: false as soon as the partial sum exceeds `limit`
// (sound — the terms are nonnegative and IEEE addition of nonnegatives is
// monotone, so the full sum could only be larger); on true, *d2 holds the
// full canonical sum, bit-identical to CellPairDist2.
inline bool CellPairDist2Within(const int64_t* a, const int64_t* b, int dim,
                                double side, double limit, double* d2) {
  double sum = 0.0;
  for (int i = 0; i < dim; ++i) {
    const int64_t d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > 1) {
      const double gap = static_cast<double>(d - 1) * side;
      sum += gap * gap;
      if (sum > limit) return false;
    }
  }
  *d2 = sum;
  return true;
}

// Largest per-axis |Δ_i| whose single-axis corner distance fits under
// `limit2`; every stencil entry satisfies |Δ_i| <= this bound, so it also
// bounds the scan-path candidate window. Capped (see stencil.cc) so a
// degenerate (eps, side) ratio cannot spin.
int64_t MaxAbsDeltaFor(double side, double limit2);

// The shared stencil for (dim, eps, side), or nullptr when it would exceed
// kMaxStencilEntries (callers then scan materialized cells instead).
// Thread-safe; a small process-wide cache makes repeated lookups cheap and
// keeps the table shared across grids (every pipeline over the same
// (dim, eps) hits one entry, since side is a function of eps and dim).
std::shared_ptr<const NeighborStencil> StencilFor(int dim, double eps,
                                                  double side);

}  // namespace adbscan

#endif  // ADBSCAN_GRID_STENCIL_H_
