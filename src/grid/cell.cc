#include "grid/cell.h"

#include <cmath>

#include "util/check.h"

namespace adbscan {

CellCoord CellCoord::Of(const double* p, int dim, double side) {
  ADB_DCHECK(side > 0.0);
  CellCoord cc;
  cc.dim = dim;
  for (int i = 0; i < dim; ++i) {
    cc.c[i] = static_cast<int64_t>(std::floor(p[i] / side));
  }
  return cc;
}

Box CellCoord::ToBox(double side) const {
  Box b = Box::Empty(dim);
  for (int i = 0; i < dim; ++i) {
    b.lo[i] = static_cast<double>(c[i]) * side;
    b.hi[i] = static_cast<double>(c[i] + 1) * side;
  }
  return b;
}

void CellCoord::Center(double side, double* out) const {
  for (int i = 0; i < dim; ++i) {
    out[i] = (static_cast<double>(c[i]) + 0.5) * side;
  }
}

size_t CellCoordHash::operator()(const CellCoord& cc) const {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(cc.dim);
  for (int i = 0; i < cc.dim; ++i) {
    uint64_t z = h + static_cast<uint64_t>(cc.c[i]) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    h = z ^ (z >> 31);
  }
  return static_cast<size_t>(h);
}

}  // namespace adbscan
