#include "grid/grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

double Grid::SideFor(double eps, int dim) {
  ADB_CHECK(eps > 0.0);
  return eps / std::sqrt(static_cast<double>(dim));
}

Grid::Grid(const Dataset& data, double side) : data_(&data), side_(side) {
  ADB_CHECK(side > 0.0);
  const size_t n = data.size();
  point_cell_.resize(n);
  coord_to_cell_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const CellCoord cc = CellCoord::Of(data.point(i), data.dim(), side_);
    auto [it, inserted] =
        coord_to_cell_.try_emplace(cc, static_cast<uint32_t>(cells_.size()));
    if (inserted) {
      cells_.push_back(Cell{cc, {}});
    }
    cells_[it->second].points.push_back(static_cast<uint32_t>(i));
    point_cell_[i] = it->second;
  }

  // Cell-center kd-tree for ε-neighbor enumeration.
  centers_ = std::make_unique<Dataset>(data.dim());
  centers_->Reserve(cells_.size());
  double center[kMaxDim];
  for (const Cell& c : cells_) {
    c.coord.Center(side_, center);
    centers_->Add(center);
  }
  if (!cells_.empty()) {
    center_tree_ = std::make_unique<KdTree>(*centers_);
  }
}

uint32_t Grid::FindCell(const CellCoord& cc) const {
  const auto it = coord_to_cell_.find(cc);
  return it == coord_to_cell_.end() ? kNoCell : it->second;
}

void Grid::ComputeNeighborsInto(uint32_t ci, double eps,
                                std::vector<uint32_t>* out) const {
  // Centers of ε-neighbor cells lie within eps + √d·side of ci's center
  // (eps between the boxes plus half a cell diameter on each side).
  const double diam = side_ * std::sqrt(static_cast<double>(dim()));
  const double radius = eps + diam + 1e-9 * side_;
  std::vector<uint32_t> candidates =
      center_tree_->RangeQuery(centers_->point(ci), radius);
  const Box my_box = CellBoxOf(ci);
  std::vector<std::pair<double, uint32_t>> by_dist;
  by_dist.reserve(candidates.size());
  const double eps2 = eps * eps;
  for (uint32_t cj : candidates) {
    if (cj == ci) continue;
    const double d2 = my_box.MinSquaredDistToBox(CellBoxOf(cj));
    if (d2 <= eps2) by_dist.emplace_back(d2, cj);
  }
  std::sort(by_dist.begin(), by_dist.end());
  out->clear();
  out->reserve(by_dist.size());
  for (const auto& [d2, cj] : by_dist) out->push_back(cj);
}

void Grid::ResetCacheFor(double eps) const {
  if (cache_eps_ != eps) {
    cache_eps_ = eps;
    cache_valid_.assign(cells_.size(), 0);
    neighbor_cache_.assign(cells_.size(), {});
  }
}

const std::vector<uint32_t>& Grid::EpsNeighbors(uint32_t ci,
                                                double eps) const {
  ADB_DCHECK(ci < cells_.size());
  ResetCacheFor(eps);
  if (!cache_valid_[ci]) {
    ComputeNeighborsInto(ci, eps, &neighbor_cache_[ci]);
    cache_valid_[ci] = 1;
  }
  return neighbor_cache_[ci];
}

void Grid::WarmNeighborCache(double eps, int num_threads) const {
  ResetCacheFor(eps);
  ParallelFor(cells_.size(), num_threads, [&](size_t begin, size_t end) {
    for (size_t ci = begin; ci < end; ++ci) {
      if (cache_valid_[ci]) continue;
      ComputeNeighborsInto(static_cast<uint32_t>(ci), eps,
                           &neighbor_cache_[ci]);
      cache_valid_[ci] = 1;
    }
  });
}

std::vector<uint32_t> Grid::CellsTouchingBall(const double* q,
                                              double eps) const {
  std::vector<uint32_t> out;
  if (cells_.empty()) return out;
  const double diam = side_ * std::sqrt(static_cast<double>(dim()));
  const double radius = eps + 0.5 * diam + 1e-9 * side_;
  std::vector<uint32_t> candidates = center_tree_->RangeQuery(q, radius);
  out.reserve(candidates.size());
  const double eps2 = eps * eps;
  for (uint32_t cj : candidates) {
    if (CellBoxOf(cj).MinSquaredDistToPoint(q) <= eps2) out.push_back(cj);
  }
  return out;
}

}  // namespace adbscan
