#include "grid/grid.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "grid/morton.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/scratch_arena.h"

namespace adbscan {
namespace {

// Test override for the ε-neighbor engine choice: 0 = auto, 1 = stencil,
// 2 = scan.
std::atomic<int> g_forced_path{0};

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void Grid::ForceNeighborPathForTest(NeighborPath path) {
  g_forced_path.store(path == NeighborPath::kAuto     ? 0
                      : path == NeighborPath::kStencil ? 1
                                                       : 2,
                      std::memory_order_relaxed);
}

double Grid::SideFor(double eps, int dim) {
  ADB_CHECK(eps > 0.0);
  return eps / std::sqrt(static_cast<double>(dim));
}

Grid::Grid(const Dataset& data, double side) : Grid(data, side, 1) {}

Grid::Grid(const Dataset& data, double side, int num_threads)
    : data_(&data), side_(side) {
  ADB_CHECK(side > 0.0);
  BuildCsr(num_threads);
}

void Grid::BuildCsr(int num_threads) {
  ADB_PHASE("grid.csr.build");
  const size_t n = data_->size();
  point_cell_.resize(n);

  // Workers share the id space in T fixed, contiguous chunks (chunk t =
  // [bounds[t], bounds[t+1])) rather than the dynamic ParallelFor partition:
  // the counting fill below needs to know, per cell, how many ids each
  // chunk contributes and in which chunk every id lies. T is capped so a
  // chunk never gets trivially small.
  constexpr size_t kMinChunk = 1 << 14;
  const size_t max_chunks = std::max<size_t>(n / kMinChunk, 1);
  const size_t T =
      std::min<size_t>(std::max(num_threads, 1), max_chunks);
  std::vector<size_t> bounds(T + 1);
  for (size_t t = 0; t <= T; ++t) bounds[t] = n * t / T;

  // Pass 1: assign every point a provisional dense cell index. Each chunk
  // discovers its cells through a private open-addressing table sized so
  // the load factor stays below 1/2 even if every point lands in its own
  // cell (no rehash mid-build); a sequential merge then unifies the chunk
  // tables into one provisional numbering. That numbering depends on T —
  // deliberately harmless, since the Morton sort below replaces it with the
  // unique Z-order rank before anything escapes the build.
  std::vector<CellCoord> prov_coords;
  std::vector<uint32_t> counts;
  const CellCoordHash hasher;
  // Per chunk: coords in first-appearance order, matching counts, and the
  // map from local index to the merged provisional index.
  std::vector<std::vector<CellCoord>> local_coords(T);
  std::vector<std::vector<uint32_t>> local_counts(T);
  std::vector<std::vector<uint32_t>> local_to_prov(T);
  {
    ADB_PHASE("grid.csr.assign");
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        const size_t begin = bounds[t], end = bounds[t + 1];
        const size_t build_slots = NextPow2(2 * std::max<size_t>(end - begin, 1));
        const size_t build_mask = build_slots - 1;
        // Pooled per worker: this table is n-proportional (the one large
        // build-time temporary), so a fresh vector each build costs an
        // mmap + page-fault walk. assign() on the pooled buffer reuses the
        // pages at memset speed.
        std::vector<uint32_t>& slots =
            WorkerScratch<uint32_t>(scratch::kGridBuildSlots);
        slots.assign(build_slots, kNoCell);
        std::vector<CellCoord>& my_coords = local_coords[t];
        std::vector<uint32_t>& my_counts = local_counts[t];
        // Consecutive points usually land in the same cell (data arrives in
        // spatially coherent order: generator walks, scan order, sensor
        // streams), so one cached (coord, index) pair short-circuits the
        // hash probe for the common case at the cost of a d-lane compare.
        CellCoord last_cc;
        uint32_t last_ci = kNoCell;
        for (size_t i = begin; i < end; ++i) {
          const CellCoord cc =
              CellCoord::Of(data_->point(i), data_->dim(), side_);
          uint32_t ci;
          if (last_ci != kNoCell && cc == last_cc) {
            ci = last_ci;
          } else {
            size_t h = hasher(cc) & build_mask;
            for (;;) {
              ci = slots[h];
              if (ci == kNoCell) {
                ci = static_cast<uint32_t>(my_coords.size());
                slots[h] = ci;
                my_coords.push_back(cc);
                my_counts.push_back(0);
                break;
              }
              if (my_coords[ci] == cc) break;
              h = (h + 1) & build_mask;
            }
            last_cc = cc;
            last_ci = ci;
          }
          ++my_counts[ci];
          point_cell_[i] = ci;  // chunk-local; remapped below
        }
      }
    });
    // Merge: one global table over the distinct cells of all chunks.
    size_t distinct_upper = 0;
    for (size_t t = 0; t < T; ++t) distinct_upper += local_coords[t].size();
    const size_t build_slots = NextPow2(2 * std::max<size_t>(distinct_upper, 1));
    const size_t build_mask = build_slots - 1;
    // The workers above are done with the slot; sequential reuse is safe.
    std::vector<uint32_t>& slots =
        WorkerScratch<uint32_t>(scratch::kGridBuildSlots);
    slots.assign(build_slots, kNoCell);
    for (size_t t = 0; t < T; ++t) {
      local_to_prov[t].resize(local_coords[t].size());
      for (size_t l = 0; l < local_coords[t].size(); ++l) {
        const CellCoord& cc = local_coords[t][l];
        size_t h = hasher(cc) & build_mask;
        uint32_t ci;
        for (;;) {
          ci = slots[h];
          if (ci == kNoCell) {
            ci = static_cast<uint32_t>(prov_coords.size());
            slots[h] = ci;
            prov_coords.push_back(cc);
            counts.push_back(0);
            break;
          }
          if (prov_coords[ci] == cc) break;
          h = (h + 1) & build_mask;
        }
        counts[ci] += local_counts[t][l];
        local_to_prov[t][l] = ci;
      }
    }
  }
  const size_t num_cells = prov_coords.size();

  // Sort cells (not points: cells are far fewer) along the exact Z-order
  // curve, then remap every provisional index.
  std::vector<uint32_t> order(num_cells);
  {
    ADB_PHASE("grid.csr.sort");
    std::iota(order.begin(), order.end(), 0u);
    const int dim = data_->dim();
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return MortonLess(prov_coords[a].c.data(), prov_coords[b].c.data(), dim);
    });
  }
  std::vector<uint32_t> new_of_old(num_cells);
  for (uint32_t k = 0; k < num_cells; ++k) new_of_old[order[k]] = k;

  {
    ADB_PHASE("grid.csr.fill");
    coords_.resize(num_cells);
    offsets_.assign(num_cells + 1, 0);
    for (uint32_t k = 0; k < num_cells; ++k) {
      coords_[k] = prov_coords[order[k]];
      offsets_[k + 1] = offsets_[k] + counts[order[k]];
    }
    // Remap each chunk's local indices straight to the Morton rank.
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        const std::vector<uint32_t>& to_prov = local_to_prov[t];
        for (size_t i = bounds[t]; i < bounds[t + 1]; ++i) {
          point_cell_[i] = new_of_old[to_prov[point_cell_[i]]];
        }
      }
    });

    // Counting fill in ascending point id, so each cell's slice is
    // ascending. Parallel case: chunk t's ids land in the sub-slice of each
    // cell that starts after every earlier chunk's contribution (cursors
    // from an exclusive scan of the per-(cell, chunk) counts); chunks hold
    // ascending, disjoint id ranges, so the concatenation per cell is the
    // serial ascending order.
    point_ids_.resize(n);
    std::vector<uint32_t> cursors(T * num_cells);
    {
      std::vector<uint32_t> running(offsets_.begin(), offsets_.end() - 1);
      for (size_t t = 0; t < T; ++t) {
        uint32_t* cursor = cursors.data() + t * num_cells;
        std::copy(running.begin(), running.end(), cursor);
        for (size_t l = 0; l < local_to_prov[t].size(); ++l) {
          running[new_of_old[local_to_prov[t][l]]] += local_counts[t][l];
        }
      }
    }
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        uint32_t* cursor = cursors.data() + t * num_cells;
        for (size_t i = bounds[t]; i < bounds[t + 1]; ++i) {
          point_ids_[cursor[point_cell_[i]]++] = static_cast<uint32_t>(i);
        }
      }
    });

    // Final lookup table sized to the actual cell count; values are the
    // Morton-ranked indices.
    hash_slots_.assign(NextPow2(2 * std::max<size_t>(num_cells, 1)), kNoCell);
    hash_mask_ = hash_slots_.size() - 1;
    for (uint32_t k = 0; k < num_cells; ++k) {
      size_t h = hasher(coords_[k]) & hash_mask_;
      while (hash_slots_[h] != kNoCell) h = (h + 1) & hash_mask_;
      hash_slots_[h] = k;
    }
  }

  // The permuted SoA is NOT gathered here: EnsureSoa() builds it on the
  // first CellBlock call, so pipelines that never touch blocks skip the
  // n-proportional gather.

  // Axis-0 projection for the scan engine: cells ordered by c[0] (ties by
  // Morton rank, keeping the order a pure function of the cell set). Built
  // eagerly — it is eps-independent and a single O(cells log cells) sort.
  {
    ADB_PHASE("grid.csr.proj0");
    proj0_order_.resize(num_cells);
    std::iota(proj0_order_.begin(), proj0_order_.end(), 0u);
    std::sort(proj0_order_.begin(), proj0_order_.end(),
              [&](uint32_t a, uint32_t b) {
                if (coords_[a].c[0] != coords_[b].c[0]) {
                  return coords_[a].c[0] < coords_[b].c[0];
                }
                return a < b;
              });
    proj0_key_.resize(num_cells);
    for (size_t k = 0; k < num_cells; ++k) {
      proj0_key_[k] = coords_[proj0_order_[k]].c[0];
    }
  }
}

void Grid::EnsureSoa() const {
  // Permuted SoA: each cell a lane-aligned block, padding lanes replicating
  // the cell's last point so kernels can run full-width tails (the SoaBlock
  // gather implements exactly that for the id list we hand it). Serial —
  // the first caller may already be a ParallelFor worker.
  ADB_PHASE("grid.csr.soa");
  const size_t num_cells = coords_.size();
  soa_begin_.resize(num_cells);
  uint32_t total = 0;
  for (uint32_t k = 0; k < num_cells; ++k) {
    soa_begin_[k] = total;
    total += static_cast<uint32_t>(
        simd::PaddedCount(offsets_[k + 1] - offsets_[k]));
  }
  std::vector<uint32_t> layout_ids(total);
  for (size_t k = 0; k < num_cells; ++k) {
    uint32_t* dst = layout_ids.data() + soa_begin_[k];
    const uint32_t begin = offsets_[k];
    const uint32_t end = offsets_[k + 1];
    for (uint32_t j = begin; j < end; ++j) *dst++ = point_ids_[j];
    const uint32_t last = point_ids_[end - 1];
    for (size_t j = end - begin; j < simd::PaddedCount(end - begin); ++j) {
      *dst++ = last;
    }
  }
  perm_soa_ = simd::SoaBlock(*data_, layout_ids.data(), layout_ids.size(), 1);
}

simd::SoaSpan Grid::CellBlock(uint32_t ci) const {
  ADB_COUNT("grid.block_kernel_calls", 1);
  std::call_once(soa_once_, [this] { EnsureSoa(); });
  return perm_soa_.span(soa_begin_[ci], offsets_[ci + 1] - offsets_[ci]);
}

uint32_t Grid::FindCell(const CellCoord& cc) const {
  if (hash_slots_.empty()) return kNoCell;
  size_t h = CellCoordHash{}(cc) & hash_mask_;
  size_t probes = 1;
  uint32_t found = kNoCell;
  for (;;) {
    const uint32_t ci = hash_slots_[h];
    if (ci == kNoCell) break;
    if (coords_[ci] == cc) {
      found = ci;
      break;
    }
    h = (h + 1) & hash_mask_;
    ++probes;
  }
  ADB_COUNT("grid.hash_probes", probes);
  return found;
}

size_t Grid::CsrBytes() const {
  return offsets_.size() * sizeof(uint32_t) +
         point_ids_.size() * sizeof(uint32_t) +
         soa_begin_.size() * sizeof(uint32_t) +
         hash_slots_.size() * sizeof(uint32_t) +
         static_cast<size_t>(perm_soa_.dim()) * perm_soa_.stride() *
             sizeof(double);
}

uint32_t Grid::FindCellRaw(const int64_t* c) const {
  // CellCoordHash over raw coordinates, skipping the CellCoord copy the
  // public FindCell pays — this probe sits inside the stencil walk, the
  // hottest loop of the grid.
  const int d = dim();
  uint64_t h64 = 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(d);
  for (int i = 0; i < d; ++i) {
    uint64_t z = h64 + static_cast<uint64_t>(c[i]) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    h64 = z ^ (z >> 31);
  }
  size_t h = static_cast<size_t>(h64) & hash_mask_;
  for (;;) {
    const uint32_t ci = hash_slots_[h];
    if (ci == kNoCell) return kNoCell;
    const int64_t* have = coords_[ci].c.data();
    bool eq = true;
    for (int i = 0; i < d; ++i) {
      if (have[i] != c[i]) {
        eq = false;
        break;
      }
    }
    if (eq) return ci;
    h = (h + 1) & hash_mask_;
  }
}

const Grid::StencilSlot& Grid::ResolveStencil(double eps) const {
  const StencilSlot* hint = stencil_hint_.load(std::memory_order_acquire);
  if (hint != nullptr && hint->eps == eps) return *hint;
  const std::lock_guard<std::mutex> lock(stencil_mutex_);
  for (const auto& slot : stencil_slots_) {
    if (slot->eps == eps) {
      stencil_hint_.store(slot.get(), std::memory_order_release);
      return *slot;
    }
  }
  auto slot = std::make_unique<StencilSlot>();
  slot->eps = eps;
  slot->eps2 = eps * eps;
  // Engine choice, fixed per (grid, eps): walking the stencil costs one
  // hash probe per entry regardless of occupancy, while the axis-0 window
  // scan is bounded by the materialized cell count — so the stencil pays
  // off only while it is no bigger than the cell set. Every stencil
  // contains at least the 3^dim unit shell, so when that floor already
  // exceeds the cell count the (possibly expensive) build is skipped
  // outright — e.g. a near-one-point-per-cell d=7 grid would otherwise
  // build 257k entries just to discard them.
  size_t unit_shell = 1;
  for (int i = 0; i < dim(); ++i) unit_shell *= 3;
  // A test forcing the stencil path needs the stencil built regardless
  // (and must force before the first query for this eps — slots are
  // created once).
  if (unit_shell <= NumCells() ||
      g_forced_path.load(std::memory_order_relaxed) == 1) {
    slot->stencil = StencilFor(dim(), eps, side_);
  }
  slot->max_abs =
      slot->stencil != nullptr
          ? slot->stencil->max_abs
          : MaxAbsDeltaFor(side_, slot->eps2 * (1.0 + kCandidateSlack));
  slot->use_stencil =
      slot->stencil != nullptr && slot->stencil->size() <= NumCells();
  stencil_slots_.push_back(std::move(slot));
  const StencilSlot* raw = stencil_slots_.back().get();
  stencil_hint_.store(raw, std::memory_order_release);
  return *raw;
}

void Grid::StencilNeighborsInto(uint32_t ci, const StencilSlot& slot,
                                std::vector<uint32_t>* out) const {
  const NeighborStencil& st = *slot.stencil;
  const int d = dim();
  const int64_t* a = coords_[ci].c.data();
  int64_t target[kMaxDim];
  // Appends to *out (the warm build concatenates many cells into one
  // buffer). Walk one equal-distance group at a time: entries are ascending
  // by corner distance, and sorting each group's hits puts ties in
  // ascending cell index — the same (dist2, cj) order the scan engine's
  // full sort produces. The zero delta resolves to ci itself and is
  // dropped; every other delta is distinct, so no other entry can.
  size_t begin = 0;
  for (uint32_t end : st.group_end) {
    if (begin >= st.num_neighbor) break;
    const size_t found_begin = out->size();
    for (size_t k = begin; k < end; ++k) {
      const int32_t* delta = st.delta(k);
      for (int i = 0; i < d; ++i) target[i] = a[i] + delta[i];
      const uint32_t cj = FindCellRaw(target);
      if (cj != kNoCell && cj != ci) out->push_back(cj);
    }
    std::sort(out->begin() + found_begin, out->end());
    begin = end;
  }
}

void Grid::ScanNeighborsInto(uint32_t ci, const StencilSlot& slot,
                             std::vector<uint32_t>* out) const {
  const int d = dim();
  const int64_t* a = coords_[ci].c.data();
  std::vector<std::pair<double, uint32_t>>& keys =
      WorkerScratch<std::pair<double, uint32_t>>(scratch::kGridDistKeys);
  keys.clear();
  const size_t lo = static_cast<size_t>(
      std::lower_bound(proj0_key_.begin(), proj0_key_.end(),
                       a[0] - slot.max_abs) -
      proj0_key_.begin());
  const size_t hi = static_cast<size_t>(
      std::upper_bound(proj0_key_.begin(), proj0_key_.end(),
                       a[0] + slot.max_abs) -
      proj0_key_.begin());
  for (size_t k = lo; k < hi; ++k) {
    const uint32_t cj = proj0_order_[k];
    if (cj == ci) continue;
    double d2;
    if (CellPairDist2Within(a, coords_[cj].c.data(), d, side_, slot.eps2,
                            &d2)) {
      keys.emplace_back(d2, cj);
    }
  }
  // Appends to *out. Bitwise-equal corner distances compare equal, so the
  // pair sort breaks ties by cell index — matching the stencil engine
  // bit-for-bit.
  std::sort(keys.begin(), keys.end());
  out->reserve(out->size() + keys.size());
  for (const auto& [d2, cj] : keys) out->push_back(cj);
}

bool Grid::UseStencil(const StencilSlot& slot) {
  const int forced = g_forced_path.load(std::memory_order_relaxed);
  if (forced != 0) {
    ADB_CHECK_MSG(forced == 2 || slot.stencil != nullptr,
                  "stencil path forced but stencil exceeds entry cap");
    return forced == 1;
  }
  return slot.use_stencil;
}

void Grid::AppendNeighbors(uint32_t ci, const StencilSlot& slot,
                           std::vector<uint32_t>* out) const {
  if (UseStencil(slot)) {
    StencilNeighborsInto(ci, slot, out);
  } else {
    ScanNeighborsInto(ci, slot, out);
  }
}

void Grid::ComputeNeighborsInto(uint32_t ci, double eps,
                                std::vector<uint32_t>* out) const {
  out->clear();
  AppendNeighbors(ci, ResolveStencil(eps), out);
}

void Grid::ResetCacheFor(double eps) const {
  if (cache_eps_ == eps) return;
  // Single-eps contract (see grid.h): resetting a warmed cache races with
  // its concurrent readers and throws away the whole flattened structure.
  ADB_DCHECK(!warmed_);
  if (cache_eps_ >= 0.0) ADB_COUNT("grid.cache_resets", 1);
  cache_eps_ = eps;
  warmed_ = false;
  warm_offsets_.clear();
  warm_ids_.clear();
  cache_valid_.assign(NumCells(), 0);
  neighbor_cache_.assign(NumCells(), {});
}

Grid::IdSpan Grid::EpsNeighbors(uint32_t ci, double eps) const {
  ADB_DCHECK(ci < NumCells());
  if (warmed_ && eps == cache_eps_) {
    // Read-only flat cache: safe under concurrent callers.
    return {warm_ids_.data() + warm_offsets_[ci],
            warm_offsets_[ci + 1] - warm_offsets_[ci]};
  }
  ResetCacheFor(eps);
  if (!cache_valid_[ci]) {
    ComputeNeighborsInto(ci, eps, &neighbor_cache_[ci]);
    cache_valid_[ci] = 1;
  }
  return {neighbor_cache_[ci].data(), neighbor_cache_[ci].size()};
}

void Grid::WarmNeighborCache(double eps, int num_threads) const {
  if (warmed_ && cache_eps_ == eps) return;
  ResetCacheFor(eps);
  const size_t num_cells = NumCells();
  {
    ADB_PHASE("grid.warm");
    // Single enumeration pass straight into per-chunk buffers — no
    // per-cell vectors. Cells are split into T fixed contiguous chunks;
    // chunk t appends its cells' neighbor lists (each already in final
    // order) to one buffer and records per-cell counts into warm_offsets_
    // (disjoint slots, no races). Because per-cell content is independent
    // of the chunking and chunks cover ascending cell ranges, the stitched
    // arrays are identical for every thread count.
    const StencilSlot& slot = ResolveStencil(eps);
    constexpr size_t kMinCellChunk = 64;
    const size_t max_chunks = std::max<size_t>(num_cells / kMinCellChunk, 1);
    const size_t T =
        std::min<size_t>(std::max(num_threads, 1), max_chunks);
    std::vector<size_t> bounds(T + 1);
    for (size_t t = 0; t <= T; ++t) bounds[t] = num_cells * t / T;
    std::vector<std::vector<uint32_t>> chunk_ids(T);
    warm_offsets_.assign(num_cells + 1, 0);
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        std::vector<uint32_t>& ids = chunk_ids[t];
        for (size_t ci = bounds[t]; ci < bounds[t + 1]; ++ci) {
          const size_t before = ids.size();
          AppendNeighbors(static_cast<uint32_t>(ci), slot, &ids);
          warm_offsets_[ci + 1] = static_cast<uint32_t>(ids.size() - before);
        }
      }
    });
    for (size_t ci = 0; ci < num_cells; ++ci) {
      warm_offsets_[ci + 1] += warm_offsets_[ci];
    }
    warm_ids_.resize(warm_offsets_[num_cells]);
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        std::copy(chunk_ids[t].begin(), chunk_ids[t].end(),
                  warm_ids_.begin() + warm_offsets_[bounds[t]]);
      }
    });
  }
  neighbor_cache_.clear();
  neighbor_cache_.shrink_to_fit();
  cache_valid_.clear();
  cache_valid_.shrink_to_fit();
  warmed_ = true;
}

std::vector<uint32_t> Grid::CellsNearCoord(const CellCoord& cc,
                                           double eps) const {
  std::vector<uint32_t> out;
  CellsNearCoord(cc, eps, &out);
  return out;
}

void Grid::CellsNearCoord(const CellCoord& cc, double eps,
                          std::vector<uint32_t>* out) const {
  out->clear();
  if (coords_.empty()) return;
  {
    const StencilSlot& slot = ResolveStencil(eps);
    const int d = dim();
    const int64_t* a = cc.c.data();
    if (UseStencil(slot)) {
      // Neighbor prefix of the stencil anchored at cc — unlike
      // StencilNeighborsInto, the zero delta stays (cc's own cell, if
      // materialized, is within distance 0).
      const NeighborStencil& st = *slot.stencil;
      int64_t target[kMaxDim];
      for (size_t k = 0; k < st.num_neighbor; ++k) {
        const int32_t* delta = st.delta(k);
        for (int i = 0; i < d; ++i) target[i] = a[i] + delta[i];
        const uint32_t cj = FindCellRaw(target);
        if (cj != kNoCell) out->push_back(cj);
      }
    } else {
      const size_t lo = static_cast<size_t>(
          std::lower_bound(proj0_key_.begin(), proj0_key_.end(),
                           a[0] - slot.max_abs) -
          proj0_key_.begin());
      const size_t hi = static_cast<size_t>(
          std::upper_bound(proj0_key_.begin(), proj0_key_.end(),
                           a[0] + slot.max_abs) -
          proj0_key_.begin());
      double d2;
      for (size_t k = lo; k < hi; ++k) {
        const uint32_t cj = proj0_order_[k];
        if (CellPairDist2Within(a, coords_[cj].c.data(), d, side_, slot.eps2,
                                &d2)) {
          out->push_back(cj);
        }
      }
    }
    // Canonical output order, independent of the engine chosen.
    std::sort(out->begin(), out->end());
  }
}

std::vector<uint32_t> Grid::CellsTouchingBall(const double* q,
                                              double eps) const {
  std::vector<uint32_t> out;
  CellsTouchingBall(q, eps, &out);
  return out;
}

void Grid::CellsTouchingBall(const double* q, double eps,
                             std::vector<uint32_t>* out) const {
  out->clear();
  if (coords_.empty()) return;
  const double eps2 = eps * eps;
  {
    const StencilSlot& slot = ResolveStencil(eps);
    const int d = dim();
    const CellCoord cq = CellCoord::Of(q, d, side_);
    const int64_t* a = cq.c.data();
    if (UseStencil(slot)) {
      // Candidate superset: every cell touching B(q, eps) has corner
      // distance to cq at most eps² in exact arithmetic (q lies in cq's
      // box), hence at most limit2 = eps²·(1 + slack) in the canonical FP
      // formula — the full stencil, slack entries included. The emitted
      // set is decided by the exact point-to-box predicate alone.
      const NeighborStencil& st = *slot.stencil;
      int64_t target[kMaxDim];
      const size_t total = st.size();
      for (size_t k = 0; k < total; ++k) {
        const int32_t* delta = st.delta(k);
        for (int i = 0; i < d; ++i) target[i] = a[i] + delta[i];
        const uint32_t cj = FindCellRaw(target);
        if (cj != kNoCell &&
            CellBoxOf(cj).MinSquaredDistToPoint(q) <= eps2) {
          out->push_back(cj);
        }
      }
    } else {
      // The axis-0 window bounds the same superset; the exact predicate
      // runs directly on the window cells.
      const size_t lo = static_cast<size_t>(
          std::lower_bound(proj0_key_.begin(), proj0_key_.end(),
                           a[0] - slot.max_abs) -
          proj0_key_.begin());
      const size_t hi = static_cast<size_t>(
          std::upper_bound(proj0_key_.begin(), proj0_key_.end(),
                           a[0] + slot.max_abs) -
          proj0_key_.begin());
      for (size_t k = lo; k < hi; ++k) {
        const uint32_t cj = proj0_order_[k];
        if (CellBoxOf(cj).MinSquaredDistToPoint(q) <= eps2) {
          out->push_back(cj);
        }
      }
    }
    std::sort(out->begin(), out->end());
  }
}

}  // namespace adbscan
