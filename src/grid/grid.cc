#include "grid/grid.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "grid/morton.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

// Process-wide default layout: -1 = read ADBSCAN_GRID_LAYOUT on first use.
std::atomic<int> g_default_layout{-1};

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

double Grid::SideFor(double eps, int dim) {
  ADB_CHECK(eps > 0.0);
  return eps / std::sqrt(static_cast<double>(dim));
}

Grid::Layout Grid::DefaultLayout() {
  int v = g_default_layout.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ADBSCAN_GRID_LAYOUT");
    v = (env != nullptr && std::strcmp(env, "legacy") == 0) ? 1 : 0;
    g_default_layout.store(v, std::memory_order_relaxed);
  }
  return v == 1 ? Layout::kLegacy : Layout::kCsr;
}

void Grid::SetDefaultLayout(Layout layout) {
  g_default_layout.store(layout == Layout::kLegacy ? 1 : 0,
                         std::memory_order_relaxed);
}

Grid::Grid(const Dataset& data, double side)
    : Grid(data, side, DefaultLayout(), 1) {}

Grid::Grid(const Dataset& data, double side, Layout layout)
    : Grid(data, side, layout, 1) {}

Grid::Grid(const Dataset& data, double side, Layout layout, int num_threads)
    : data_(&data), side_(side), layout_(layout) {
  ADB_CHECK(side > 0.0);
  if (layout_ == Layout::kCsr) {
    BuildCsr(num_threads);
  } else {
    BuildLegacy();
  }
  BuildCenters();
}

void Grid::BuildLegacy() {
  ADB_PHASE("grid.legacy.build");
  const size_t n = data_->size();
  point_cell_.resize(n);
  coord_to_cell_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const CellCoord cc = CellCoord::Of(data_->point(i), data_->dim(), side_);
    auto [it, inserted] =
        coord_to_cell_.try_emplace(cc, static_cast<uint32_t>(coords_.size()));
    if (inserted) {
      coords_.push_back(cc);
      legacy_points_.emplace_back();
    }
    legacy_points_[it->second].push_back(static_cast<uint32_t>(i));
    point_cell_[i] = it->second;
  }
}

void Grid::BuildCsr(int num_threads) {
  ADB_PHASE("grid.csr.build");
  const size_t n = data_->size();
  point_cell_.resize(n);

  // Workers share the id space in T fixed, contiguous chunks (chunk t =
  // [bounds[t], bounds[t+1])) rather than the dynamic ParallelFor partition:
  // the counting fill below needs to know, per cell, how many ids each
  // chunk contributes and in which chunk every id lies. T is capped so a
  // chunk never gets trivially small.
  constexpr size_t kMinChunk = 1 << 14;
  const size_t max_chunks = std::max<size_t>(n / kMinChunk, 1);
  const size_t T =
      std::min<size_t>(std::max(num_threads, 1), max_chunks);
  std::vector<size_t> bounds(T + 1);
  for (size_t t = 0; t <= T; ++t) bounds[t] = n * t / T;

  // Pass 1: assign every point a provisional dense cell index. Each chunk
  // discovers its cells through a private open-addressing table sized so
  // the load factor stays below 1/2 even if every point lands in its own
  // cell (no rehash mid-build); a sequential merge then unifies the chunk
  // tables into one provisional numbering. That numbering depends on T —
  // deliberately harmless, since the Morton sort below replaces it with the
  // unique Z-order rank before anything escapes the build.
  std::vector<CellCoord> prov_coords;
  std::vector<uint32_t> counts;
  const CellCoordHash hasher;
  // Per chunk: coords in first-appearance order, matching counts, and the
  // map from local index to the merged provisional index.
  std::vector<std::vector<CellCoord>> local_coords(T);
  std::vector<std::vector<uint32_t>> local_counts(T);
  std::vector<std::vector<uint32_t>> local_to_prov(T);
  {
    ADB_PHASE("grid.csr.assign");
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        const size_t begin = bounds[t], end = bounds[t + 1];
        const size_t build_slots = NextPow2(2 * std::max<size_t>(end - begin, 1));
        const size_t build_mask = build_slots - 1;
        std::vector<uint32_t> slots(build_slots, kNoCell);
        std::vector<CellCoord>& my_coords = local_coords[t];
        std::vector<uint32_t>& my_counts = local_counts[t];
        for (size_t i = begin; i < end; ++i) {
          const CellCoord cc =
              CellCoord::Of(data_->point(i), data_->dim(), side_);
          size_t h = hasher(cc) & build_mask;
          uint32_t ci;
          for (;;) {
            ci = slots[h];
            if (ci == kNoCell) {
              ci = static_cast<uint32_t>(my_coords.size());
              slots[h] = ci;
              my_coords.push_back(cc);
              my_counts.push_back(0);
              break;
            }
            if (my_coords[ci] == cc) break;
            h = (h + 1) & build_mask;
          }
          ++my_counts[ci];
          point_cell_[i] = ci;  // chunk-local; remapped below
        }
      }
    });
    // Merge: one global table over the distinct cells of all chunks.
    size_t distinct_upper = 0;
    for (size_t t = 0; t < T; ++t) distinct_upper += local_coords[t].size();
    const size_t build_slots = NextPow2(2 * std::max<size_t>(distinct_upper, 1));
    const size_t build_mask = build_slots - 1;
    std::vector<uint32_t> slots(build_slots, kNoCell);
    for (size_t t = 0; t < T; ++t) {
      local_to_prov[t].resize(local_coords[t].size());
      for (size_t l = 0; l < local_coords[t].size(); ++l) {
        const CellCoord& cc = local_coords[t][l];
        size_t h = hasher(cc) & build_mask;
        uint32_t ci;
        for (;;) {
          ci = slots[h];
          if (ci == kNoCell) {
            ci = static_cast<uint32_t>(prov_coords.size());
            slots[h] = ci;
            prov_coords.push_back(cc);
            counts.push_back(0);
            break;
          }
          if (prov_coords[ci] == cc) break;
          h = (h + 1) & build_mask;
        }
        counts[ci] += local_counts[t][l];
        local_to_prov[t][l] = ci;
      }
    }
  }
  const size_t num_cells = prov_coords.size();

  // Sort cells (not points: cells are far fewer) along the exact Z-order
  // curve, then remap every provisional index.
  std::vector<uint32_t> order(num_cells);
  {
    ADB_PHASE("grid.csr.sort");
    std::iota(order.begin(), order.end(), 0u);
    const int dim = data_->dim();
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return MortonLess(prov_coords[a].c.data(), prov_coords[b].c.data(), dim);
    });
  }
  std::vector<uint32_t> new_of_old(num_cells);
  for (uint32_t k = 0; k < num_cells; ++k) new_of_old[order[k]] = k;

  {
    ADB_PHASE("grid.csr.fill");
    coords_.resize(num_cells);
    offsets_.assign(num_cells + 1, 0);
    for (uint32_t k = 0; k < num_cells; ++k) {
      coords_[k] = prov_coords[order[k]];
      offsets_[k + 1] = offsets_[k] + counts[order[k]];
    }
    // Remap each chunk's local indices straight to the Morton rank.
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        const std::vector<uint32_t>& to_prov = local_to_prov[t];
        for (size_t i = bounds[t]; i < bounds[t + 1]; ++i) {
          point_cell_[i] = new_of_old[to_prov[point_cell_[i]]];
        }
      }
    });

    // Counting fill in ascending point id, so each cell's slice is
    // ascending — the same within-cell order the legacy per-cell vectors
    // have. Parallel case: chunk t's ids land in the sub-slice of each
    // cell that starts after every earlier chunk's contribution (cursors
    // from an exclusive scan of the per-(cell, chunk) counts); chunks hold
    // ascending, disjoint id ranges, so the concatenation per cell is the
    // serial ascending order.
    point_ids_.resize(n);
    std::vector<uint32_t> cursors(T * num_cells);
    {
      std::vector<uint32_t> running(offsets_.begin(), offsets_.end() - 1);
      for (size_t t = 0; t < T; ++t) {
        uint32_t* cursor = cursors.data() + t * num_cells;
        std::copy(running.begin(), running.end(), cursor);
        for (size_t l = 0; l < local_to_prov[t].size(); ++l) {
          running[new_of_old[local_to_prov[t][l]]] += local_counts[t][l];
        }
      }
    }
    ParallelFor(T, static_cast<int>(T), [&](size_t tb, size_t te) {
      for (size_t t = tb; t < te; ++t) {
        uint32_t* cursor = cursors.data() + t * num_cells;
        for (size_t i = bounds[t]; i < bounds[t + 1]; ++i) {
          point_ids_[cursor[point_cell_[i]]++] = static_cast<uint32_t>(i);
        }
      }
    });

    // Final lookup table sized to the actual cell count; values are the
    // Morton-ranked indices.
    hash_slots_.assign(NextPow2(2 * std::max<size_t>(num_cells, 1)), kNoCell);
    hash_mask_ = hash_slots_.size() - 1;
    for (uint32_t k = 0; k < num_cells; ++k) {
      size_t h = hasher(coords_[k]) & hash_mask_;
      while (hash_slots_[h] != kNoCell) h = (h + 1) & hash_mask_;
      hash_slots_[h] = k;
    }
  }

  // Permuted SoA: each cell a lane-aligned block, padding lanes replicating
  // the cell's last point so kernels can run full-width tails (the SoaBlock
  // gather implements exactly that for the id list we hand it).
  {
    ADB_PHASE("grid.csr.soa");
    soa_begin_.resize(num_cells);
    uint32_t total = 0;
    for (uint32_t k = 0; k < num_cells; ++k) {
      soa_begin_[k] = total;
      total += static_cast<uint32_t>(
          simd::PaddedCount(offsets_[k + 1] - offsets_[k]));
    }
    std::vector<uint32_t> layout_ids(total);
    ParallelFor(num_cells, static_cast<int>(T), [&](size_t kb, size_t ke) {
      for (size_t k = kb; k < ke; ++k) {
        uint32_t* dst = layout_ids.data() + soa_begin_[k];
        const uint32_t begin = offsets_[k];
        const uint32_t end = offsets_[k + 1];
        for (uint32_t j = begin; j < end; ++j) *dst++ = point_ids_[j];
        const uint32_t last = point_ids_[end - 1];
        for (size_t j = end - begin; j < simd::PaddedCount(end - begin); ++j) {
          *dst++ = last;
        }
      }
    });
    perm_soa_ = simd::SoaBlock(*data_, layout_ids.data(), layout_ids.size(),
                               static_cast<int>(T));
  }
}

void Grid::BuildCenters() {
  centers_ = std::make_unique<Dataset>(data_->dim());
  centers_->Reserve(coords_.size());
  double center[kMaxDim];
  for (const CellCoord& cc : coords_) {
    cc.Center(side_, center);
    centers_->Add(center);
  }
  if (!coords_.empty()) {
    center_tree_ = std::make_unique<KdTree>(*centers_);
  }
}

simd::SoaSpan Grid::CellBlock(uint32_t ci, simd::SoaBlock* scratch) const {
  ADB_COUNT("grid.block_kernel_calls", 1);
  if (layout_ == Layout::kCsr) {
    return perm_soa_.span(soa_begin_[ci], offsets_[ci + 1] - offsets_[ci]);
  }
  ADB_DCHECK(scratch != nullptr);
  const std::vector<uint32_t>& pts = legacy_points_[ci];
  *scratch = simd::SoaBlock(*data_, pts.data(), pts.size());
  return scratch->span();
}

uint32_t Grid::FindCell(const CellCoord& cc) const {
  if (layout_ == Layout::kLegacy) {
    const auto it = coord_to_cell_.find(cc);
    return it == coord_to_cell_.end() ? kNoCell : it->second;
  }
  if (hash_slots_.empty()) return kNoCell;
  size_t h = CellCoordHash{}(cc) & hash_mask_;
  size_t probes = 1;
  uint32_t found = kNoCell;
  for (;;) {
    const uint32_t ci = hash_slots_[h];
    if (ci == kNoCell) break;
    if (coords_[ci] == cc) {
      found = ci;
      break;
    }
    h = (h + 1) & hash_mask_;
    ++probes;
  }
  ADB_COUNT("grid.hash_probes", probes);
  return found;
}

size_t Grid::CsrBytes() const {
  if (layout_ != Layout::kCsr) return 0;
  return offsets_.size() * sizeof(uint32_t) +
         point_ids_.size() * sizeof(uint32_t) +
         soa_begin_.size() * sizeof(uint32_t) +
         hash_slots_.size() * sizeof(uint32_t) +
         static_cast<size_t>(perm_soa_.dim()) * perm_soa_.stride() *
             sizeof(double);
}

void Grid::ComputeNeighborsInto(uint32_t ci, double eps,
                                std::vector<uint32_t>* out) const {
  // Centers of ε-neighbor cells lie within eps + √d·side of ci's center
  // (eps between the boxes plus half a cell diameter on each side).
  const double diam = side_ * std::sqrt(static_cast<double>(dim()));
  const double radius = eps + diam + 1e-9 * side_;
  std::vector<uint32_t> candidates =
      center_tree_->RangeQuery(centers_->point(ci), radius);
  const Box my_box = CellBoxOf(ci);
  std::vector<std::pair<double, uint32_t>> by_dist;
  by_dist.reserve(candidates.size());
  const double eps2 = eps * eps;
  for (uint32_t cj : candidates) {
    if (cj == ci) continue;
    const double d2 = my_box.MinSquaredDistToBox(CellBoxOf(cj));
    if (d2 <= eps2) by_dist.emplace_back(d2, cj);
  }
  std::sort(by_dist.begin(), by_dist.end());
  out->clear();
  out->reserve(by_dist.size());
  for (const auto& [d2, cj] : by_dist) out->push_back(cj);
}

void Grid::ResetCacheFor(double eps) const {
  if (cache_eps_ == eps) return;
  // Single-eps contract (see grid.h): resetting a warmed cache races with
  // its concurrent readers and throws away the whole flattened structure.
  ADB_DCHECK(!warmed_);
  if (cache_eps_ >= 0.0) ADB_COUNT("grid.cache_resets", 1);
  cache_eps_ = eps;
  warmed_ = false;
  warm_offsets_.clear();
  warm_ids_.clear();
  cache_valid_.assign(NumCells(), 0);
  neighbor_cache_.assign(NumCells(), {});
}

Grid::IdSpan Grid::EpsNeighbors(uint32_t ci, double eps) const {
  ADB_DCHECK(ci < NumCells());
  if (warmed_ && eps == cache_eps_) {
    // Read-only flat cache: safe under concurrent callers.
    return {warm_ids_.data() + warm_offsets_[ci],
            warm_offsets_[ci + 1] - warm_offsets_[ci]};
  }
  ResetCacheFor(eps);
  if (!cache_valid_[ci]) {
    ComputeNeighborsInto(ci, eps, &neighbor_cache_[ci]);
    cache_valid_[ci] = 1;
  }
  return {neighbor_cache_[ci].data(), neighbor_cache_[ci].size()};
}

void Grid::WarmNeighborCache(double eps, int num_threads) const {
  if (warmed_ && cache_eps_ == eps) return;
  ResetCacheFor(eps);
  const size_t num_cells = NumCells();
  ParallelFor(num_cells, num_threads, [&](size_t begin, size_t end) {
    for (size_t ci = begin; ci < end; ++ci) {
      if (cache_valid_[ci]) continue;
      ComputeNeighborsInto(static_cast<uint32_t>(ci), eps,
                           &neighbor_cache_[ci]);
      cache_valid_[ci] = 1;
    }
  });
  // Flatten to CSR and free the per-cell vectors; EpsNeighbors now serves
  // reads out of two contiguous arrays.
  warm_offsets_.assign(num_cells + 1, 0);
  for (size_t ci = 0; ci < num_cells; ++ci) {
    warm_offsets_[ci + 1] =
        warm_offsets_[ci] + static_cast<uint32_t>(neighbor_cache_[ci].size());
  }
  warm_ids_.resize(warm_offsets_[num_cells]);
  for (size_t ci = 0; ci < num_cells; ++ci) {
    std::copy(neighbor_cache_[ci].begin(), neighbor_cache_[ci].end(),
              warm_ids_.begin() + warm_offsets_[ci]);
  }
  neighbor_cache_.clear();
  neighbor_cache_.shrink_to_fit();
  cache_valid_.clear();
  cache_valid_.shrink_to_fit();
  warmed_ = true;
}

std::vector<uint32_t> Grid::CellsNearCoord(const CellCoord& cc,
                                           double eps) const {
  std::vector<uint32_t> out;
  if (coords_.empty()) return out;
  // Same candidate radius as ComputeNeighborsInto: centers of ε-neighbor
  // cells lie within eps plus a full cell diameter of cc's center.
  const double diam = side_ * std::sqrt(static_cast<double>(dim()));
  const double radius = eps + diam + 1e-9 * side_;
  double center[kMaxDim];
  cc.Center(side_, center);
  std::vector<uint32_t> candidates = center_tree_->RangeQuery(center, radius);
  const Box my_box = cc.ToBox(side_);
  out.reserve(candidates.size());
  const double eps2 = eps * eps;
  for (uint32_t cj : candidates) {
    if (my_box.MinSquaredDistToBox(CellBoxOf(cj)) <= eps2) out.push_back(cj);
  }
  return out;
}

std::vector<uint32_t> Grid::CellsTouchingBall(const double* q,
                                              double eps) const {
  std::vector<uint32_t> out;
  if (coords_.empty()) return out;
  const double diam = side_ * std::sqrt(static_cast<double>(dim()));
  const double radius = eps + 0.5 * diam + 1e-9 * side_;
  std::vector<uint32_t> candidates = center_tree_->RangeQuery(q, radius);
  out.reserve(candidates.size());
  const double eps2 = eps * eps;
  for (uint32_t cj : candidates) {
    if (CellBoxOf(cj).MinSquaredDistToPoint(q) <= eps2) out.push_back(cj);
  }
  return out;
}

}  // namespace adbscan
