#ifndef ADBSCAN_GRID_GRID_H_
#define ADBSCAN_GRID_GRID_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/dataset.h"
#include "geom/soa.h"
#include "grid/cell.h"
#include "index/kdtree.h"

namespace adbscan {

// The grid T of Sections 2.2 / 3.2: a hash grid whose cells are
// d-dimensional hyper-squares of side length ε/√d, so that any two points in
// the same cell are within distance ε. Only non-empty cells are
// materialized.
//
// Memory layout (Layout::kCsr, the default): non-empty cells are sorted by
// the Morton (Z-order) code of their integer coordinates, membership is one
// CSR structure (offsets + point_ids, ids ascending within a cell), and the
// whole dataset is re-materialized at build time as a permuted SoA in cell
// order — every cell is a contiguous, lane-aligned block that the batch
// kernels (geom/kernels.h) consume with zero gather. Coordinate lookup is a
// flat open-addressing table (linear probing over SplitMix64-mixed keys)
// instead of std::unordered_map. All public ids are ORIGINAL dataset ids;
// the permutation is internal to the SoA.
//
// Layout::kLegacy reproduces the pre-CSR representation (per-cell heap
// vectors, unordered_map lookup, per-call SoA gather in CellBlock) and
// exists as the measured baseline for bench/micro_grid and as the reference
// side of the layout-equivalence tests. Both layouts produce bit-identical
// clusterings: cell enumeration order never reaches the output (core counts
// are order-independent, components are renumbered by first core point in
// id order, border memberships are sorted), and within-cell point order is
// ascending id in both.
//
// Two cells are ε-neighbors when the minimum distance between their extents
// is at most ε. Rather than probing all integer offsets within range — their
// number grows like (2⌈√d⌉+3)^d, ~257k for d = 7 — neighbor enumeration
// queries a kd-tree built over the non-empty cells' centers and then filters
// by the exact box-to-box distance. This visits only non-empty cells, which
// is what the O(1)-neighbors-per-cell accounting of the paper refers to.
class Grid {
 public:
  enum class Layout { kCsr, kLegacy };

  // A non-owning view over a list of ids (cell membership, ε-neighbor
  // lists). Valid for the lifetime of the grid, except lazily computed
  // neighbor lists, which are invalidated by a cache reset (see
  // EpsNeighbors).
  struct IdSpan {
    const uint32_t* ptr = nullptr;
    size_t count = 0;

    const uint32_t* begin() const { return ptr; }
    const uint32_t* end() const { return ptr + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    uint32_t operator[](size_t i) const { return ptr[i]; }
    uint32_t front() const { return ptr[0]; }
  };

  static constexpr uint32_t kNoCell = 0xffffffffu;

  // Builds the grid over all points of `data` (which must outlive the grid).
  explicit Grid(const Dataset& data, double side);
  Grid(const Dataset& data, double side, Layout layout);

  // As above, building the CSR structures with up to num_threads workers
  // (<= 1, or the legacy layout, builds serially). The result is identical
  // for every thread count: the parallel build only changes the provisional
  // cell numbering, which the Morton sort erases, and the counting fill
  // places each thread's contiguous, ascending id range into per-(cell,
  // thread) sub-slices that concatenate to the serial ascending order.
  Grid(const Dataset& data, double side, Layout layout, int num_threads);

  // Side length chosen by the paper's algorithms: ε/√d.
  static double SideFor(double eps, int dim);

  // Layout used when the two-argument constructor runs: ADBSCAN_GRID_LAYOUT
  // ("csr" | "legacy", default csr), overridable per process for tests and
  // benches. Not thread-safe against concurrent grid construction.
  static Layout DefaultLayout();
  static void SetDefaultLayout(Layout layout);

  Layout layout() const { return layout_; }
  int dim() const { return data_->dim(); }
  double side() const { return side_; }
  const Dataset& data() const { return *data_; }

  size_t NumCells() const { return coords_.size(); }
  const CellCoord& CellCoordOf(uint32_t ci) const { return coords_[ci]; }
  Box CellBoxOf(uint32_t ci) const { return coords_[ci].ToBox(side_); }

  // Ids of the points in cell ci, ascending.
  IdSpan cell_points(uint32_t ci) const {
    if (layout_ == Layout::kCsr) {
      return {point_ids_.data() + offsets_[ci], offsets_[ci + 1] - offsets_[ci]};
    }
    return {legacy_points_[ci].data(), legacy_points_[ci].size()};
  }
  size_t CellSize(uint32_t ci) const { return cell_points(ci).size(); }

  // Lane-aligned SoA view of cell ci's points, in cell_points(ci) order
  // (lane j holds point cell_points(ci)[j]). CSR layout: a zero-copy span
  // into the build-time permuted SoA; `scratch` is ignored and may be null.
  // Legacy layout: gathered into *scratch on every call (the pre-CSR cost
  // model), so the span is valid until the next CellBlock on the same
  // scratch. Thread-safe in CSR layout.
  simd::SoaSpan CellBlock(uint32_t ci, simd::SoaBlock* scratch) const;

  // Index of the cell containing point id (always valid).
  uint32_t CellOfPoint(uint32_t id) const { return point_cell_[id]; }

  // Index of the non-empty cell at the given coordinates, or kNoCell.
  uint32_t FindCell(const CellCoord& cc) const;

  // All non-empty cells c' != ci with min-dist(box(ci), box(c')) <= eps,
  // i.e. the ε-neighbors of ci, ordered by ascending box-to-box distance
  // (so MinPts-style early exits touch the closest cells first).
  //
  // Lists are computed once per cell and cached: the labeling process, the
  // edge generation, and the border assignment all walk the same lists.
  //
  // Single-eps contract: the cache is keyed by ONE eps at a time. Querying
  // a different eps resets the cache (counted by grid.cache_resets) and —
  // because resetting would race with concurrent readers of a warmed cache
  // — is an ADB_DCHECK violation once WarmNeighborCache has run. Every
  // pipeline queries exactly one eps per grid; build a fresh grid to probe
  // another.
  IdSpan EpsNeighbors(uint32_t ci, double eps) const;

  // Fills the whole neighbor cache for `eps` using up to num_threads
  // workers, then flattens it into CSR form (one offsets + one ids array).
  // EpsNeighbors afterwards only reads the flat cache, making it safe to
  // call concurrently. Idempotent for the same eps.
  void WarmNeighborCache(double eps, int num_threads) const;

  // All non-empty cells whose extent intersects the closed ball B(q, eps).
  // Superset-free: exactly the cells that could contain points within eps
  // of q.
  std::vector<uint32_t> CellsTouchingBall(const double* q, double eps) const;

  // All non-empty cells whose extent is within eps (exact box-to-box
  // distance) of the hyper-square at coordinates cc — the ε-neighbor set of
  // a cell that need not be materialized in this grid. If cc itself is a
  // cell of the grid, it is included (distance 0); callers filter it. Used
  // by the dynamic clusterer to relate overlay cells to snapshot cells.
  std::vector<uint32_t> CellsNearCoord(const CellCoord& cc, double eps) const;

  // Bytes held by the CSR representation (offsets, point ids, SoA begins,
  // hash slots, permuted SoA). 0 in legacy layout.
  size_t CsrBytes() const;

 private:
  void BuildCsr(int num_threads);
  void BuildLegacy();
  void BuildCenters();
  void ComputeNeighborsInto(uint32_t ci, double eps,
                            std::vector<uint32_t>* out) const;
  void ResetCacheFor(double eps) const;

  const Dataset* data_;
  double side_;
  Layout layout_;
  std::vector<CellCoord> coords_;       // per cell, Morton order under kCsr
  std::vector<uint32_t> point_cell_;    // per point

  // kCsr: membership CSR + permuted SoA + flat open-addressing hash.
  std::vector<uint32_t> offsets_;    // NumCells() + 1
  std::vector<uint32_t> point_ids_;  // n ids, ascending within each cell
  std::vector<uint32_t> soa_begin_;  // lane-aligned start of each cell's block
  simd::SoaBlock perm_soa_;          // dataset permuted into cell order
  std::vector<uint32_t> hash_slots_; // power-of-two, kNoCell = empty
  size_t hash_mask_ = 0;

  // kLegacy: the pre-CSR representation.
  std::vector<std::vector<uint32_t>> legacy_points_;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> coord_to_cell_;

  // Cell centers as a dataset + kd-tree for neighbor enumeration.
  std::unique_ptr<Dataset> centers_;
  std::unique_ptr<KdTree> center_tree_;

  // ε-neighbor cache for the eps in cache_eps_: lazy per-cell vectors until
  // WarmNeighborCache flattens them into warm_offsets_/warm_ids_.
  mutable double cache_eps_ = -1.0;
  mutable bool warmed_ = false;
  mutable std::vector<char> cache_valid_;
  mutable std::vector<std::vector<uint32_t>> neighbor_cache_;
  mutable std::vector<uint32_t> warm_offsets_;
  mutable std::vector<uint32_t> warm_ids_;
};

}  // namespace adbscan

#endif  // ADBSCAN_GRID_GRID_H_
