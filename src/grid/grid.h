#ifndef ADBSCAN_GRID_GRID_H_
#define ADBSCAN_GRID_GRID_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/dataset.h"
#include "grid/cell.h"
#include "index/kdtree.h"

namespace adbscan {

// The grid T of Sections 2.2 / 3.2: a hash grid whose cells are
// d-dimensional hyper-squares of side length ε/√d, so that any two points in
// the same cell are within distance ε. Only non-empty cells are
// materialized.
//
// Two cells are ε-neighbors when the minimum distance between their extents
// is at most ε. Rather than probing all integer offsets within range — their
// number grows like (2⌈√d⌉+3)^d, ~257k for d = 7 — neighbor enumeration
// queries a kd-tree built over the non-empty cells' centers and then filters
// by the exact box-to-box distance. This visits only non-empty cells, which
// is what the O(1)-neighbors-per-cell accounting of the paper refers to.
class Grid {
 public:
  struct Cell {
    CellCoord coord;
    std::vector<uint32_t> points;  // ids of the dataset points it covers
  };

  static constexpr uint32_t kNoCell = 0xffffffffu;

  // Builds the grid over all points of `data` (which must outlive the grid).
  Grid(const Dataset& data, double side);

  // Side length chosen by the paper's algorithms: ε/√d.
  static double SideFor(double eps, int dim);

  int dim() const { return data_->dim(); }
  double side() const { return side_; }
  const Dataset& data() const { return *data_; }

  size_t NumCells() const { return cells_.size(); }
  const Cell& cell(uint32_t ci) const { return cells_[ci]; }
  Box CellBoxOf(uint32_t ci) const { return cells_[ci].coord.ToBox(side_); }

  // Index of the cell containing point id (always valid).
  uint32_t CellOfPoint(uint32_t id) const { return point_cell_[id]; }

  // Index of the non-empty cell at the given coordinates, or kNoCell.
  uint32_t FindCell(const CellCoord& cc) const;

  // All non-empty cells c' != ci with min-dist(box(ci), box(c')) <= eps,
  // i.e. the ε-neighbors of ci, ordered by ascending box-to-box distance
  // (so MinPts-style early exits touch the closest cells first).
  //
  // Lists are computed once per cell and cached: the labeling process, the
  // edge generation, and the border assignment all walk the same lists.
  // The cache is keyed by eps; querying a different eps resets it.
  const std::vector<uint32_t>& EpsNeighbors(uint32_t ci, double eps) const;

  // Fills the whole neighbor cache for `eps` using up to num_threads
  // workers. EpsNeighbors afterwards only reads the cache, making it safe
  // to call concurrently. Idempotent.
  void WarmNeighborCache(double eps, int num_threads) const;

  // All non-empty cells whose extent intersects the closed ball B(q, eps).
  // Superset-free: exactly the cells that could contain points within eps
  // of q.
  std::vector<uint32_t> CellsTouchingBall(const double* q, double eps) const;

 private:
  void ComputeNeighborsInto(uint32_t ci, double eps,
                            std::vector<uint32_t>* out) const;
  void ResetCacheFor(double eps) const;

  const Dataset* data_;
  double side_;
  std::vector<Cell> cells_;
  std::vector<uint32_t> point_cell_;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> coord_to_cell_;
  // Cell centers as a dataset + kd-tree for neighbor enumeration.
  std::unique_ptr<Dataset> centers_;
  std::unique_ptr<KdTree> center_tree_;
  // Lazy per-cell neighbor cache for the eps in cache_eps_.
  mutable double cache_eps_ = -1.0;
  mutable std::vector<char> cache_valid_;
  mutable std::vector<std::vector<uint32_t>> neighbor_cache_;
};

}  // namespace adbscan

#endif  // ADBSCAN_GRID_GRID_H_
