#ifndef ADBSCAN_GRID_GRID_H_
#define ADBSCAN_GRID_GRID_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "geom/dataset.h"
#include "geom/soa.h"
#include "grid/cell.h"
#include "grid/stencil.h"

namespace adbscan {

// The grid T of Sections 2.2 / 3.2: a hash grid whose cells are
// d-dimensional hyper-squares of side length ε/√d, so that any two points in
// the same cell are within distance ε. Only non-empty cells are
// materialized.
//
// Memory layout: non-empty cells are sorted by the Morton (Z-order) code
// of their integer coordinates, membership is one CSR structure (offsets +
// point_ids, ids ascending within a cell), and the whole dataset is
// re-materialized (lazily, on first CellBlock call) as a permuted SoA in
// cell order — every cell is a contiguous, lane-aligned block that the
// batch kernels (geom/kernels.h) consume with zero gather. Coordinate
// lookup is a flat open-addressing table (linear probing over
// SplitMix64-mixed keys). All public ids are ORIGINAL dataset ids; the
// permutation is internal to the SoA. (The pre-CSR per-cell-vector layout
// and its kd-tree-over-cell-centers enumeration were retired once the CSR
// layout measured at least as fast on every micro_grid op — see
// bench/baselines/BENCH_grid_layout_final.json for the closing dual-layout
// measurement.)
//
// Two cells are ε-neighbors when the canonical corner distance between
// their integer coordinates (CellPairDist2 in grid/stencil.h) is at most
// ε². Enumeration walks a precomputed offset stencil shared by every cell
// — the (2⌈√d⌉+3)^d shell pruned exactly by corner distance — against the
// open-addressing cell hash, or, when the stencil would exceed the number
// of materialized cells, scans an axis-0-sorted window of cells with the
// same early-exit corner sum. Both engines produce bit-identical output
// (ascending corner distance, ties by ascending cell index).
class Grid {
 public:
  // A non-owning view over a list of ids (cell membership, ε-neighbor
  // lists). Valid for the lifetime of the grid, except lazily computed
  // neighbor lists, which are invalidated by a cache reset (see
  // EpsNeighbors).
  struct IdSpan {
    const uint32_t* ptr = nullptr;
    size_t count = 0;

    const uint32_t* begin() const { return ptr; }
    const uint32_t* end() const { return ptr + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    uint32_t operator[](size_t i) const { return ptr[i]; }
    uint32_t front() const { return ptr[0]; }
  };

  static constexpr uint32_t kNoCell = 0xffffffffu;

  // Builds the grid over all points of `data` (which must outlive the grid).
  explicit Grid(const Dataset& data, double side);

  // As above, building the CSR structures with up to num_threads workers
  // (<= 1 builds serially). The result is identical for every thread
  // count: the parallel build only changes the provisional cell numbering,
  // which the Morton sort erases, and the counting fill places each
  // thread's contiguous, ascending id range into per-(cell, thread)
  // sub-slices that concatenate to the serial ascending order.
  Grid(const Dataset& data, double side, int num_threads);

  // Side length chosen by the paper's algorithms: ε/√d.
  static double SideFor(double eps, int dim);

  int dim() const { return data_->dim(); }
  double side() const { return side_; }
  const Dataset& data() const { return *data_; }

  size_t NumCells() const { return coords_.size(); }
  const CellCoord& CellCoordOf(uint32_t ci) const { return coords_[ci]; }
  Box CellBoxOf(uint32_t ci) const { return coords_[ci].ToBox(side_); }

  // Ids of the points in cell ci, ascending.
  IdSpan cell_points(uint32_t ci) const {
    return {point_ids_.data() + offsets_[ci], offsets_[ci + 1] - offsets_[ci]};
  }
  size_t CellSize(uint32_t ci) const { return cell_points(ci).size(); }

  // Lane-aligned SoA view of cell ci's points, in cell_points(ci) order
  // (lane j holds point cell_points(ci)[j]): a zero-copy span into the
  // permuted SoA, gathered once on the first call. Thread-safe.
  simd::SoaSpan CellBlock(uint32_t ci) const;

  // Index of the cell containing point id (always valid).
  uint32_t CellOfPoint(uint32_t id) const { return point_cell_[id]; }

  // Index of the non-empty cell at the given coordinates, or kNoCell.
  uint32_t FindCell(const CellCoord& cc) const;

  // All non-empty cells c' != ci with corner distance
  // CellPairDist2(coord(ci), coord(c')) <= eps², i.e. the ε-neighbors of
  // ci, ordered by ascending corner distance with ties by ascending cell
  // index (so MinPts-style early exits touch the closest cells first).
  //
  // Lists are computed once per cell and cached: the labeling process, the
  // edge generation, and the border assignment all walk the same lists.
  //
  // Single-eps contract: the cache is keyed by ONE eps at a time. Querying
  // a different eps resets the cache (counted by grid.cache_resets) and —
  // because resetting would race with concurrent readers of a warmed cache
  // — is an ADB_DCHECK violation once WarmNeighborCache has run. Every
  // pipeline queries exactly one eps per grid; build a fresh grid to probe
  // another.
  IdSpan EpsNeighbors(uint32_t ci, double eps) const;

  // Fills the whole neighbor cache for `eps` using up to num_threads
  // workers, then flattens it into CSR form (one offsets + one ids array).
  // EpsNeighbors afterwards only reads the flat cache, making it safe to
  // call concurrently. Idempotent for the same eps.
  void WarmNeighborCache(double eps, int num_threads) const;

  // All non-empty cells whose extent intersects the closed ball B(q, eps)
  // (exact FP predicate: CellBoxOf(c).MinSquaredDistToPoint(q) <= eps²),
  // ascending cell index. Superset-free: exactly the cells that could
  // contain points within eps of q. The out-param form clears and refills
  // *out and is allocation-free in steady state (a warmed caller reusing
  // one buffer never touches the heap); thread-safe.
  std::vector<uint32_t> CellsTouchingBall(const double* q, double eps) const;
  void CellsTouchingBall(const double* q, double eps,
                         std::vector<uint32_t>* out) const;

  // All non-empty cells whose corner distance to the hyper-square at
  // coordinates cc is at most eps² — the ε-neighbor set of a cell that need
  // not be materialized in this grid, ascending cell index. If cc itself is
  // a cell of the grid, it is included (distance 0); callers filter it.
  // Used by the dynamic clusterer to relate overlay cells to snapshot
  // cells; the predicate is the same CellPairDist2 that EpsNeighbors uses,
  // so overlay and snapshot decisions always agree.
  std::vector<uint32_t> CellsNearCoord(const CellCoord& cc, double eps) const;
  void CellsNearCoord(const CellCoord& cc, double eps,
                      std::vector<uint32_t>* out) const;

  // Test hook: force ε-neighbor enumeration onto one engine (kStencil =
  // stencil hash-walk, kScan = axis-0 window scan) instead of the automatic
  // size-based choice, to differentially cover both. kAuto restores the
  // default. Process-wide; not for concurrent use with grid queries.
  enum class NeighborPath { kAuto, kStencil, kScan };
  static void ForceNeighborPathForTest(NeighborPath path);

  // Bytes held by the CSR representation (offsets, point ids, SoA begins,
  // hash slots, permuted SoA).
  size_t CsrBytes() const;

 private:
  // One resolved stencil lookup per eps queried on this grid: the shared
  // table (null when over kMaxStencilEntries → scan engine), the per-axis
  // window bound for the scan engine, and the engine choice, fixed once per
  // (grid, eps) so every query of that eps takes the same path.
  struct StencilSlot {
    double eps = 0.0;
    double eps2 = 0.0;
    int64_t max_abs = 0;
    bool use_stencil = false;
    std::shared_ptr<const NeighborStencil> stencil;
  };

  void BuildCsr(int num_threads);
  // Gathers the permuted SoA (see soa_once_); serial, since the first call
  // may already be inside a ParallelFor worker.
  void EnsureSoa() const;
  // Lock-free on the hot path via an atomic hint; slots are never moved or
  // freed while the grid lives, so concurrent readers (CellsTouchingBall
  // inside ParallelFor) can hold references across the mutex.
  const StencilSlot& ResolveStencil(double eps) const;
  static bool UseStencil(const StencilSlot& slot);
  uint32_t FindCellRaw(const int64_t* c) const;
  void ComputeNeighborsInto(uint32_t ci, double eps,
                            std::vector<uint32_t>* out) const;
  // The two engines and their dispatcher all APPEND to *out.
  void AppendNeighbors(uint32_t ci, const StencilSlot& slot,
                       std::vector<uint32_t>* out) const;
  void StencilNeighborsInto(uint32_t ci, const StencilSlot& slot,
                            std::vector<uint32_t>* out) const;
  void ScanNeighborsInto(uint32_t ci, const StencilSlot& slot,
                         std::vector<uint32_t>* out) const;
  void ResetCacheFor(double eps) const;

  const Dataset* data_;
  double side_;
  std::vector<CellCoord> coords_;       // per cell, Morton order
  std::vector<uint32_t> point_cell_;    // per point

  // Membership CSR + permuted SoA + flat open-addressing hash.
  std::vector<uint32_t> offsets_;    // NumCells() + 1
  std::vector<uint32_t> point_ids_;  // n ids, ascending within each cell
  // Permuted SoA, gathered lazily on the first CellBlock call: pipelines
  // that never touch blocks (e.g. an all-core approximate run, where the
  // border phase has nothing to assign) skip the n-proportional gather
  // entirely. Guarded by soa_once_ so concurrent first callers are safe.
  mutable std::vector<uint32_t> soa_begin_;  // lane-aligned block starts
  mutable simd::SoaBlock perm_soa_;          // dataset permuted into cell order
  mutable std::once_flag soa_once_;
  std::vector<uint32_t> hash_slots_; // power-of-two, kNoCell = empty
  size_t hash_mask_ = 0;

  // Scan-engine support: cells ordered by coordinate c[0] with the keys
  // alongside, so a per-axis window is two binary searches. Built eagerly
  // (eps-independent) in BuildCsr.
  std::vector<uint32_t> proj0_order_;
  std::vector<int64_t> proj0_key_;

  // Stencils resolved for this grid, pinned for its lifetime (slots behind
  // unique_ptr so the hint stays valid as the vector grows).
  mutable std::mutex stencil_mutex_;
  mutable std::vector<std::unique_ptr<StencilSlot>> stencil_slots_;
  mutable std::atomic<const StencilSlot*> stencil_hint_{nullptr};

  // ε-neighbor cache for the eps in cache_eps_: lazy per-cell vectors until
  // WarmNeighborCache flattens them into warm_offsets_/warm_ids_.
  mutable double cache_eps_ = -1.0;
  mutable bool warmed_ = false;
  mutable std::vector<char> cache_valid_;
  mutable std::vector<std::vector<uint32_t>> neighbor_cache_;
  mutable std::vector<uint32_t> warm_offsets_;
  mutable std::vector<uint32_t> warm_ids_;
};

}  // namespace adbscan

#endif  // ADBSCAN_GRID_GRID_H_
