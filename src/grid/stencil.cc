#include "grid/stencil.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "obs/metrics.h"
#include "util/check.h"

namespace adbscan {
namespace {

// Hard per-axis bound: beyond this the stencil volume is astronomically
// over kMaxStencilEntries anyway, so the probe loop below stops early
// rather than counting toward a huge ratio one step at a time.
constexpr int64_t kMaxAbsCap = 1 << 16;

// Single-axis corner term for |Δ| = v, in the canonical rounding of
// CellPairDist2: ((v−1)·side)², each operation rounded once.
double AxisTerm(int64_t v, double side) {
  if (v <= 1) return 0.0;
  const double gap = static_cast<double>(v - 1) * side;
  return gap * gap;
}

// Depth-first enumeration of every delta with canonical corner distance
// <= limit2, accumulating the sum axis-by-axis exactly as CellPairDist2
// does (axis 0 outermost), so the recorded dist2 values are bit-identical
// to what a per-pair evaluation computes. Subtrees whose partial sum
// already exceeds limit2 are pruned — monotonicity of nonnegative IEEE
// sums makes the prune exact, giving output-sensitive cost instead of the
// full (2·max_abs+1)^dim sweep. Returns false when the entry cap trips.
bool Enumerate(int axis, int dim, int64_t max_abs, double side, double limit2,
               double sum, int32_t* delta, std::vector<int32_t>* deltas,
               std::vector<double>* dist2) {
  if (axis == dim) {
    if (dist2->size() >= kMaxStencilEntries) return false;
    deltas->insert(deltas->end(), delta, delta + dim);
    dist2->push_back(sum);
    return true;
  }
  for (int64_t v = -max_abs; v <= max_abs; ++v) {
    const double s = sum + AxisTerm(v < 0 ? -v : v, side);
    if (s > limit2) continue;
    delta[axis] = static_cast<int32_t>(v);
    if (!Enumerate(axis + 1, dim, max_abs, side, limit2, s, delta, deltas,
                   dist2)) {
      return false;
    }
  }
  return true;
}

std::shared_ptr<const NeighborStencil> Build(int dim, double eps,
                                             double side) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  ADB_CHECK(eps > 0.0 && side > 0.0);
  auto st = std::make_shared<NeighborStencil>();
  st->dim = dim;
  st->eps = eps;
  st->side = side;
  st->eps2 = eps * eps;
  st->limit2 = st->eps2 * (1.0 + kCandidateSlack);
  st->max_abs = MaxAbsDeltaFor(side, st->limit2);
  if (st->max_abs >= kMaxAbsCap) return nullptr;

  // Enumerate in lexicographic delta order (the tie order the sort below
  // preserves), bailing out to the scan fallback past the cap.
  std::vector<int32_t> lex_deltas;
  std::vector<double> lex_dist2;
  int32_t delta[kMaxDim] = {0};
  if (!Enumerate(0, dim, st->max_abs, side, st->limit2, 0.0, delta,
                 &lex_deltas, &lex_dist2)) {
    return nullptr;
  }
  const size_t n = lex_dist2.size();

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return lex_dist2[a] < lex_dist2[b];
  });

  st->deltas.resize(n * static_cast<size_t>(dim));
  st->dist2.resize(n);
  for (size_t k = 0; k < n; ++k) {
    st->dist2[k] = lex_dist2[order[k]];
    const int32_t* src = lex_deltas.data() + order[k] * static_cast<size_t>(dim);
    std::copy(src, src + dim, st->deltas.data() + k * static_cast<size_t>(dim));
  }
  for (size_t k = 0; k < n; ++k) {
    if (k + 1 == n || st->dist2[k + 1] != st->dist2[k]) {
      st->group_end.push_back(static_cast<uint32_t>(k + 1));
    }
  }
  st->num_neighbor = static_cast<size_t>(
      std::upper_bound(st->dist2.begin(), st->dist2.end(), st->eps2) -
      st->dist2.begin());
  ADB_COUNT("grid.stencil_builds", 1);
  ADB_COUNT("grid.stencil_entries", n);
  return st;
}

struct CacheEntry {
  int dim;
  double eps;
  double side;
  std::shared_ptr<const NeighborStencil> stencil;  // null = over the cap
};

// Small process-wide cache. Keyed on the exact (dim, eps, side) triple —
// the dist2 values depend on the absolute side, not just the eps/side
// ratio. Bounded FIFO: a parameter sweep touching many eps values cycles
// through, everything steady-state hits its one entry. Grids pin their
// stencil via shared_ptr, so eviction never invalidates a live user.
constexpr size_t kCacheCap = 8;
std::mutex g_cache_mutex;
std::vector<CacheEntry>& Cache() {
  static std::vector<CacheEntry>* cache = new std::vector<CacheEntry>();
  return *cache;
}

}  // namespace

int64_t MaxAbsDeltaFor(double side, double limit2) {
  int64_t v = 1;
  while (v < kMaxAbsCap && AxisTerm(v + 1, side) <= limit2) ++v;
  return v;
}

std::shared_ptr<const NeighborStencil> StencilFor(int dim, double eps,
                                                  double side) {
  {
    const std::lock_guard<std::mutex> lock(g_cache_mutex);
    for (const CacheEntry& e : Cache()) {
      if (e.dim == dim && e.eps == eps && e.side == side) return e.stencil;
    }
  }
  // Built outside the lock: enumeration can take milliseconds at d = 7 and
  // must not serialize unrelated lookups. Two racing builders do redundant
  // work once; the second insert below wins and both results are
  // equivalent (the build is deterministic).
  std::shared_ptr<const NeighborStencil> built = Build(dim, eps, side);
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  for (const CacheEntry& e : Cache()) {
    if (e.dim == dim && e.eps == eps && e.side == side) return e.stencil;
  }
  if (Cache().size() >= kCacheCap) Cache().erase(Cache().begin());
  Cache().push_back(CacheEntry{dim, eps, side, built});
  return built;
}

}  // namespace adbscan
