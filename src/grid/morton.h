#ifndef ADBSCAN_GRID_MORTON_H_
#define ADBSCAN_GRID_MORTON_H_

#include <cstdint>

namespace adbscan {

// Z-order (Morton) utilities over signed integer cell coordinates.
//
// The grid sorts its non-empty cells along the Z-order curve so that cells
// close in space end up close in the CSR membership arrays and in the
// permuted SoA (see grid.h). Two forms are provided:
//
//  - MortonLess: an EXACT comparator over untruncated int64 coordinates,
//    using the most-significant-differing-bit trick (Chan 2002). This is
//    what the grid sorts with — it never loses bits, so the order is the
//    true Z-order for any coordinate range.
//  - MortonInterleave/MortonDeinterleave: a truncated interleaved key with
//    B = 64/dim bits per dimension, used by tests and available for
//    key-based bucketing. Coordinates are biased at bit B-1, so the key is
//    order-preserving exactly on the window [-2^(B-1), 2^(B-1)) per axis;
//    coordinates outside the window alias (the comparator does not).

// Bits of one coordinate that fit an interleaved 64-bit key.
inline constexpr int MortonBitsPerDim(int dim) { return 64 / dim; }

// Truncates coordinate c to `bits` bits of two's complement and flips the
// top bit, mapping the window [-2^(bits-1), 2^(bits-1)) monotonically onto
// [0, 2^bits).
inline uint64_t MortonBias(int64_t c, int bits) {
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  return (static_cast<uint64_t>(c) ^ (uint64_t{1} << (bits - 1))) & mask;
}

// Inverse of MortonBias on the representable window (sign-extends).
inline int64_t MortonUnbias(uint64_t v, int bits) {
  const uint64_t flipped = v ^ (uint64_t{1} << (bits - 1));
  if (bits >= 64) return static_cast<int64_t>(flipped);
  const uint64_t sign = uint64_t{1} << (bits - 1);
  return static_cast<int64_t>((flipped ^ sign)) - static_cast<int64_t>(sign);
}

// Interleaved key over c[0..dim): bit b of dimension i lands at position
// (b * dim) + (dim - 1 - i), i.e. dimension 0 is the most significant axis
// of every level — matching MortonLess, which breaks msb ties by the lowest
// dimension index.
inline uint64_t MortonInterleave(const int64_t* c, int dim) {
  const int bits = MortonBitsPerDim(dim);
  uint64_t key = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < dim; ++i) {
      key = (key << 1) | ((MortonBias(c[i], bits) >> b) & 1u);
    }
  }
  return key;
}

// Recovers the coordinates of an interleaved key (exact on the window).
inline void MortonDeinterleave(uint64_t key, int dim, int64_t* out) {
  const int bits = MortonBitsPerDim(dim);
  uint64_t biased[64] = {};
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < dim; ++i) {
      const int pos = b * dim + (dim - 1 - i);
      biased[i] = (biased[i] << 1) | ((key >> pos) & 1u);
    }
  }
  for (int i = 0; i < dim; ++i) out[i] = MortonUnbias(biased[i], bits);
}

// True iff the highest set bit of x is strictly below that of y.
inline bool MortonLessMsb(uint64_t x, uint64_t y) {
  return x < y && x < (x ^ y);
}

// Exact Z-order comparison of two coordinate tuples: find the dimension
// holding the most significant differing bit (ties to the lowest dimension
// index) and compare that dimension. Signed coordinates are biased by
// flipping bit 63; the bias cancels under XOR, so only the final compare
// needs it.
inline bool MortonLess(const int64_t* a, const int64_t* b, int dim) {
  constexpr uint64_t kSignBit = uint64_t{1} << 63;
  uint64_t best_diff = 0;
  int msd = 0;
  for (int i = 0; i < dim; ++i) {
    const uint64_t diff =
        static_cast<uint64_t>(a[i]) ^ static_cast<uint64_t>(b[i]);
    if (MortonLessMsb(best_diff, diff)) {
      best_diff = diff;
      msd = i;
    }
  }
  return (static_cast<uint64_t>(a[msd]) ^ kSignBit) <
         (static_cast<uint64_t>(b[msd]) ^ kSignBit);
}

}  // namespace adbscan

#endif  // ADBSCAN_GRID_MORTON_H_
