#ifndef ADBSCAN_GRID_CELL_H_
#define ADBSCAN_GRID_CELL_H_

#include <array>
#include <cstdint>
#include <functional>

#include "geom/box.h"
#include "geom/point.h"

namespace adbscan {

// Integer coordinates of a grid cell: cell (k_1, ..., k_d) covers the
// hyper-square [k_i * side, (k_i + 1) * side) on every axis.
struct CellCoord {
  std::array<int64_t, kMaxDim> c{};
  int dim = 0;

  // Cell containing point p in a grid with the given side length.
  static CellCoord Of(const double* p, int dim, double side);

  // Geometric extent of the cell.
  Box ToBox(double side) const;

  // Center of the cell, written into out[0..dim).
  void Center(double side, double* out) const;

  friend bool operator==(const CellCoord& a, const CellCoord& b) {
    if (a.dim != b.dim) return false;
    for (int i = 0; i < a.dim; ++i) {
      if (a.c[i] != b.c[i]) return false;
    }
    return true;
  }
};

// Mixing hash over the used coordinates (SplitMix64-style finalizer per
// lane), suitable for unordered_map keys.
struct CellCoordHash {
  size_t operator()(const CellCoord& cc) const;
};

}  // namespace adbscan

#endif  // ADBSCAN_GRID_CELL_H_
