#include "eval/kdist.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "geom/point.h"
#include "index/kdtree.h"
#include "util/check.h"

namespace adbscan {

std::vector<double> KDistances(const Dataset& data, int k) {
  ADB_CHECK(k >= 1);
  const size_t n = data.size();
  std::vector<double> out;
  out.reserve(n);
  if (n == 0) return out;
  const KdTree tree(data);

  // k-th nearest neighbor; the point itself counts, matching |B(p, ε)| of
  // Definition 1.
  ADB_CHECK_MSG(static_cast<size_t>(k) <= n,
                "fewer than k points in the dataset");
  for (size_t i = 0; i < n; ++i) {
    const auto knn = tree.KNearest(data.point(i), static_cast<size_t>(k));
    out.push_back(std::sqrt(knn.back().squared_dist));
  }
  std::sort(out.begin(), out.end(), std::greater<double>());
  return out;
}

double SuggestEps(const Dataset& data, int min_pts, double quantile) {
  ADB_CHECK(quantile > 0.0 && quantile <= 1.0);
  const std::vector<double> kdist = KDistances(data, min_pts);
  ADB_CHECK(!kdist.empty());
  // kdist is sorted descending; the quantile-th fraction of points should
  // have k-distance <= the suggestion.
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(kdist.size()) - 1.0,
                       (1.0 - quantile) * static_cast<double>(kdist.size())));
  return kdist[idx];
}

}  // namespace adbscan
