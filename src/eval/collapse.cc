#include "eval/collapse.h"

#include <cmath>

#include "core/approx_dbscan.h"
#include "core/exact_grid.h"
#include "eval/compare.h"
#include "util/check.h"

namespace adbscan {

double FindCollapsingRadius(const Dataset& data, int min_pts,
                            const CollapseOptions& options) {
  ADB_CHECK(!data.empty());
  double hi = options.eps_hi;
  if (hi <= 0.0) {
    const Box b = data.BoundingBox();
    double diag2 = 0.0;
    for (int i = 0; i < b.dim; ++i) {
      diag2 += (b.hi[i] - b.lo[i]) * (b.hi[i] - b.lo[i]);
    }
    hi = std::sqrt(diag2);
    if (hi <= 0.0) hi = 1.0;  // all points coincide
  }
  double lo = options.eps_lo;
  ADB_CHECK(lo > 0.0);
  // Datasets smaller than the bracket (diagonal < eps_lo) leave nothing to
  // search; keep a valid bracket so the lo-probe below decides.
  if (hi <= lo) hi = 2.0 * lo;

  auto single_cluster = [&](double eps) {
    const DbscanParams params{eps, min_pts, options.num_threads};
    const Clustering c = options.use_approx
                             ? ApproxDbscan(data, params, options.rho)
                             : ExactGridDbscan(data, params);
    // "Collapsed": one cluster and nothing left out as a separate group.
    return c.num_clusters == 1;
  };

  if (single_cluster(lo)) return lo;  // already collapsed at the bracket
  // The diagonal always collapses everything with MinPts <= n.
  for (int it = 0; it < options.iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (single_cluster(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double MaxLegalRho(const Dataset& data, const DbscanParams& params,
                   const MaxLegalRhoOptions& options) {
  const Clustering exact = ExactGridDbscan(data, params);
  return MaxLegalRho(data, params, exact, options);
}

double MaxLegalRho(const Dataset& data, const DbscanParams& params,
                   const Clustering& exact,
                   const MaxLegalRhoOptions& options) {
  auto legal = [&](double rho) {
    return SameClusters(exact, ApproxDbscan(data, params, rho));
  };
  if (!legal(options.rho_lo)) return 0.0;
  if (legal(options.rho_hi)) return options.rho_hi;
  double lo = options.rho_lo, hi = options.rho_hi;
  for (int it = 0; it < options.iterations; ++it) {
    const double mid = std::sqrt(lo * hi);  // geometric: ρ spans decades
    if (legal(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace adbscan
