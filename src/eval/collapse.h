#ifndef ADBSCAN_EVAL_COLLAPSE_H_
#define ADBSCAN_EVAL_COLLAPSE_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// Section 5.1 tooling around the ε spectrum of a dataset.

struct CollapseOptions {
  double eps_lo = 100.0;     // search bracket
  double eps_hi = -1.0;      // < 0: diagonal of the bounding box
  int iterations = 24;       // bisection steps
  // When true (default) the single-cluster test runs ρ-approximate DBSCAN
  // with rho (fast, what the figure sweeps need); when false, exact
  // (ExactGridDbscan).
  bool use_approx = true;
  double rho = 0.001;
  // Worker threads for each probe run (DbscanParams::num_threads).
  int num_threads = 1;
};

// The collapsing radius of Section 5.1: the smallest ε at which DBSCAN
// (MinPts fixed) returns a single cluster. Located by bisection on the
// "number of clusters == 1" predicate, which is monotone for all but
// pathological inputs.
double FindCollapsingRadius(const Dataset& data, int min_pts,
                            const CollapseOptions& options = {});

struct MaxLegalRhoOptions {
  double rho_lo = 1e-4;
  double rho_hi = 0.2;   // figure 10 caps the plot at 0.1
  int iterations = 12;   // bisection steps
};

// The "maximum legal ρ" of Section 5.2: the largest ρ at which
// ρ-approximate DBSCAN returns exactly the same clusters as exact DBSCAN at
// (eps, min_pts). Computes the exact result once, then bisects ρ on the
// SameClusters predicate. Returns 0.0 when even rho_lo is not legal, and
// rho_hi when every tested ρ is legal.
double MaxLegalRho(const Dataset& data, const DbscanParams& params,
                   const MaxLegalRhoOptions& options = {});

// Same, but reuses a precomputed exact clustering (the Figure 10 sweep calls
// this once per ε value).
double MaxLegalRho(const Dataset& data, const DbscanParams& params,
                   const Clustering& exact,
                   const MaxLegalRhoOptions& options = {});

}  // namespace adbscan

#endif  // ADBSCAN_EVAL_COLLAPSE_H_
