#ifndef ADBSCAN_EVAL_COMPARE_H_
#define ADBSCAN_EVAL_COMPARE_H_

#include "core/dbscan_types.h"

namespace adbscan {

// Exact clustering equality in the sense of the paper's Figure 10
// experiment: the two results contain the same set of clusters, where each
// cluster is its set of member points (border multi-memberships included).
// Label numbering and cluster order are irrelevant.
bool SameClusters(const Clustering& a, const Clustering& b);

// True iff both results agree on which points are core points.
bool SameCoreFlags(const Clustering& a, const Clustering& b);

// Verifies the sandwich guarantee of Theorem 3 between exact results at ε
// and ε(1+ρ) and an approximate result at (ε, ρ):
//   (1) every cluster of `exact_eps` is contained in some cluster of
//       `approx`;
//   (2) every cluster of `approx` is contained in some cluster of
//       `exact_eps_scaled`.
// Returns true iff both statements hold.
bool SatisfiesSandwich(const Clustering& exact_eps, const Clustering& approx,
                       const Clustering& exact_eps_scaled);

// Adjusted Rand Index between the primary labelings. Noise points are
// treated as singleton clusters. Returns 1.0 for identical partitions,
// ~0 for independent ones.
double AdjustedRandIndex(const Clustering& a, const Clustering& b);

}  // namespace adbscan

#endif  // ADBSCAN_EVAL_COMPARE_H_
