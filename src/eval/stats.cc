#include "eval/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "geom/point.h"
#include "util/check.h"

namespace adbscan {

ClusteringStats ComputeStats(const Dataset& data, const Clustering& c) {
  ADB_CHECK(c.label.size() == data.size());
  const int dim = data.dim();
  ClusteringStats stats;
  stats.clusters.resize(c.num_clusters);
  for (int32_t k = 0; k < c.num_clusters; ++k) {
    ClusterStats& cs = stats.clusters[k];
    cs.cluster = k;
    cs.bounding_box = Box::Empty(dim);
    cs.centroid.assign(dim, 0.0);
  }

  const std::vector<std::vector<uint32_t>> sets = c.ClusterSets();
  for (int32_t k = 0; k < c.num_clusters; ++k) {
    ClusterStats& cs = stats.clusters[k];
    cs.size = sets[k].size();
    for (uint32_t id : sets[k]) {
      const double* p = data.point(id);
      cs.bounding_box.ExpandToPoint(p);
      for (int j = 0; j < dim; ++j) cs.centroid[j] += p[j];
      cs.core_points += (c.is_core[id] != 0);
    }
    if (cs.size > 0) {
      for (int j = 0; j < dim; ++j) {
        cs.centroid[j] /= static_cast<double>(cs.size);
      }
      double total = 0.0;
      for (uint32_t id : sets[k]) {
        total += Distance(data.point(id), cs.centroid.data(), dim);
      }
      cs.mean_centroid_dist = total / static_cast<double>(cs.size);
    }
  }

  for (size_t i = 0; i < data.size(); ++i) {
    if (c.label[i] == kNoise) {
      ++stats.noise_points;
    } else if (c.is_core[i]) {
      ++stats.core_points;
    } else {
      ++stats.border_points;
    }
  }
  stats.noise_fraction =
      data.empty() ? 0.0
                   : static_cast<double>(stats.noise_points) /
                         static_cast<double>(data.size());
  return stats;
}

void PrintStats(const ClusteringStats& stats, int max_rows) {
  std::vector<const ClusterStats*> by_size;
  by_size.reserve(stats.clusters.size());
  for (const ClusterStats& cs : stats.clusters) by_size.push_back(&cs);
  std::sort(by_size.begin(), by_size.end(),
            [](const ClusterStats* a, const ClusterStats* b) {
              return a->size > b->size;
            });
  std::printf("%zu clusters | %zu core, %zu border, %zu noise (%.2f%%)\n",
              stats.clusters.size(), stats.core_points, stats.border_points,
              stats.noise_points, 100.0 * stats.noise_fraction);
  std::printf("%8s  %10s  %10s  %14s  %12s\n", "cluster", "size", "core",
              "spread", "max extent");
  int rows = 0;
  for (const ClusterStats* cs : by_size) {
    if (rows++ >= max_rows) {
      std::printf("  ... (%zu more)\n", by_size.size() - max_rows);
      break;
    }
    std::printf("%8d  %10zu  %10zu  %14.2f  %12.2f\n", cs->cluster, cs->size,
                cs->core_points, cs->mean_centroid_dist,
                cs->size ? cs->bounding_box.MaxExtent() : 0.0);
  }
}

}  // namespace adbscan
