#ifndef ADBSCAN_EVAL_KDIST_H_
#define ADBSCAN_EVAL_KDIST_H_

#include <cstdint>
#include <vector>

#include "geom/dataset.h"

namespace adbscan {

// The sorted k-distance plot of the original KDD'96 paper: the distance of
// each point to its k-th nearest neighbor (k = MinPts), sorted descending.
// Its "valley" (first pronounced drop) is the classic heuristic for picking
// ε; the ρ-approximate story of Section 4.2 complements it by telling how
// much slack a chosen ε tolerates.
//
// Computed with one kd-tree k-NN pass, O(n log n) on benign data.
std::vector<double> KDistances(const Dataset& data, int k);

// Suggests ε as the k-distance at the given quantile of the sorted plot
// (e.g. 0.95 ≈ "clusters cover 95% of the data, the rest is noise").
double SuggestEps(const Dataset& data, int min_pts, double quantile = 0.95);

}  // namespace adbscan

#endif  // ADBSCAN_EVAL_KDIST_H_
