#include "eval/compare.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace adbscan {
namespace {

// Canonical form: clusters as sorted point-id sets, sorted among themselves.
std::vector<std::vector<uint32_t>> Canonical(const Clustering& c) {
  std::vector<std::vector<uint32_t>> sets = c.ClusterSets();
  std::sort(sets.begin(), sets.end());
  return sets;
}

// True iff every cluster of `inner` is a subset of some cluster of `outer`.
bool EachContainedInSome(const std::vector<std::vector<uint32_t>>& inner,
                         const std::vector<std::vector<uint32_t>>& outer) {
  for (const auto& in : inner) {
    bool contained = false;
    for (const auto& out : outer) {
      if (in.size() > out.size()) continue;
      if (std::includes(out.begin(), out.end(), in.begin(), in.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

}  // namespace

bool SameClusters(const Clustering& a, const Clustering& b) {
  if (a.label.size() != b.label.size()) return false;
  if (a.num_clusters != b.num_clusters) return false;
  return Canonical(a) == Canonical(b);
}

bool SameCoreFlags(const Clustering& a, const Clustering& b) {
  return a.is_core == b.is_core;
}

bool SatisfiesSandwich(const Clustering& exact_eps, const Clustering& approx,
                       const Clustering& exact_eps_scaled) {
  const auto c1 = Canonical(exact_eps);
  const auto c = Canonical(approx);
  const auto c2 = Canonical(exact_eps_scaled);
  return EachContainedInSome(c1, c) && EachContainedInSome(c, c2);
}

double AdjustedRandIndex(const Clustering& a, const Clustering& b) {
  ADB_CHECK(a.label.size() == b.label.size());
  const size_t n = a.label.size();
  if (n == 0) return 1.0;

  // Primary labels with noise points mapped to unique singleton ids.
  auto effective = [&](const Clustering& c, size_t i, int32_t* next_noise) {
    if (c.label[i] == kNoise) return (*next_noise)++;
    return c.label[i];
  };
  std::vector<int32_t> la(n), lb(n);
  int32_t noise_a = a.num_clusters, noise_b = b.num_clusters;
  for (size_t i = 0; i < n; ++i) {
    la[i] = effective(a, i, &noise_a);
    lb[i] = effective(b, i, &noise_b);
  }

  // Contingency counts.
  std::map<std::pair<int32_t, int32_t>, uint64_t> joint;
  std::map<int32_t, uint64_t> count_a, count_b;
  for (size_t i = 0; i < n; ++i) {
    ++joint[{la[i], lb[i]}];
    ++count_a[la[i]];
    ++count_b[lb[i]];
  }
  auto choose2 = [](uint64_t m) {
    return static_cast<double>(m) * static_cast<double>(m - 1) / 2.0;
  };
  double sum_joint = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (const auto& [key, m] : joint) sum_joint += choose2(m);
  for (const auto& [key, m] : count_a) sum_a += choose2(m);
  for (const auto& [key, m] : count_b) sum_b += choose2(m);
  const double total = choose2(n);
  const double expected = sum_a * sum_b / total;
  const double max_index = 0.5 * (sum_a + sum_b);
  if (max_index == expected) return 1.0;  // both trivial partitions
  return (sum_joint - expected) / (max_index - expected);
}

}  // namespace adbscan
