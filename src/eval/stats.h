#ifndef ADBSCAN_EVAL_STATS_H_
#define ADBSCAN_EVAL_STATS_H_

#include <cstdint>
#include <vector>

#include "core/dbscan_types.h"
#include "geom/box.h"
#include "geom/dataset.h"

namespace adbscan {

// Descriptive statistics of one cluster.
struct ClusterStats {
  int32_t cluster = 0;
  size_t size = 0;         // members including border multi-memberships
  size_t core_points = 0;
  Box bounding_box;
  std::vector<double> centroid;
  // Mean distance of members to the centroid (a spread measure).
  double mean_centroid_dist = 0.0;
};

// Whole-result summary.
struct ClusteringStats {
  std::vector<ClusterStats> clusters;  // indexed by cluster id
  size_t noise_points = 0;
  size_t core_points = 0;
  size_t border_points = 0;
  double noise_fraction = 0.0;
};

// Computes per-cluster and global statistics in one pass over the result.
ClusteringStats ComputeStats(const Dataset& data, const Clustering& c);

// Prints a fixed-width per-cluster summary (largest clusters first).
void PrintStats(const ClusteringStats& stats, int max_rows = 20);

}  // namespace adbscan

#endif  // ADBSCAN_EVAL_STATS_H_
