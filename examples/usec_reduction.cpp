// The hardness story of Section 3, executable: solving unit-spherical
// emptiness checking (USEC) through DBSCAN (Lemma 4).
//
//   ./usec_reduction [--n 20000] [--balls 10000] [--dim 3]
//
// Any T(n)-time DBSCAN algorithm yields a T(n)+O(n) USEC algorithm — so a
// o(n^{4/3}) DBSCAN algorithm in 3D would crack a long-open computational
// geometry problem (Theorem 1). The demo runs the reduction with both the
// exact grid algorithm and ρ-approximate DBSCAN and checks against brute
// force.

#include <cstdio>

#include "core/adbscan.h"
#include "gen/usec_gen.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace adbscan;

namespace {

void Solve(const char* label, const UsecInstance& instance, bool expected) {
  std::printf("%s (|S_pt|=%zu, |S_ball|=%zu, r=%.0f, expected %s)\n", label,
              instance.points.size(), instance.ball_centers.size(),
              instance.radius, expected ? "YES" : "NO");

  Timer t0;
  const bool brute = SolveUsecBruteForce(instance);
  std::printf("  brute force:        %-3s  in %7.3fs\n",
              brute ? "YES" : "NO", t0.ElapsedSeconds());

  Timer t1;
  const bool via_exact = SolveUsecViaDbscan(
      instance, [](const Dataset& d, const DbscanParams& p) {
        return ExactGridDbscan(d, p);
      });
  std::printf("  via exact DBSCAN:   %-3s  in %7.3fs\n",
              via_exact ? "YES" : "NO", t1.ElapsedSeconds());

  Timer t2;
  const bool via_approx = SolveUsecViaDbscan(
      instance, [](const Dataset& d, const DbscanParams& p) {
        return ApproxDbscan(d, p, 1e-6);
      });
  std::printf("  via approx DBSCAN:  %-3s  in %7.3fs\n",
              via_approx ? "YES" : "NO", t2.ElapsedSeconds());

  if (brute != expected || via_exact != expected || via_approx != expected) {
    std::printf("  MISMATCH!\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 20000, "number of points")
      .DefineInt("balls", 10000, "number of balls")
      .DefineInt("dim", 3, "dimensionality")
      .DefineDouble("radius", 1500.0, "ball radius")
      .DefineInt("seed", 99, "instance seed");
  flags.Parse(argc, argv);

  const int dim = static_cast<int>(flags.GetInt("dim"));
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const size_t balls = static_cast<size_t>(flags.GetInt("balls"));
  const double radius = flags.GetDouble("radius");

  std::printf("USEC via the Lemma 4 reduction (P = S_pt + centers, eps = r, "
              "MinPts = 1)\n\n");
  Solve("planted-YES instance",
        GenerateUsecYes(dim, n, balls, radius, flags.GetInt("seed")), true);
  Solve("planted-NO instance",
        GenerateUsecNo(dim, n, balls, radius, flags.GetInt("seed") + 1),
        false);

  std::printf(
      "Note the asymmetry the paper proves fundamental: the reduction\n"
      "inherits whatever running time DBSCAN has, and DBSCAN (d>=3) cannot\n"
      "beat the Omega(n^{4/3}) USEC barrier — while the approximate\n"
      "variant sidesteps it at the price of a (1+rho) radius slack.\n");
  return 0;
}
