// Quickstart: cluster a small synthetic dataset with ρ-approximate DBSCAN
// (the paper's recommended algorithm for any d ≥ 3) and inspect the result.
//
//   ./quickstart
//
// Walks through the whole public API surface: building a Dataset, running
// ApproxDbscan and an exact algorithm, comparing them, and reading the
// Clustering result.

#include <cstdio>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "util/rng.h"

using namespace adbscan;

int main() {
  // 1. Build a dataset: three gaussian blobs and a pinch of noise in 3D.
  Rng rng(7);
  Dataset data(3);
  const double centers[3][3] = {
      {200.0, 200.0, 200.0}, {800.0, 300.0, 500.0}, {400.0, 900.0, 700.0}};
  for (const auto& c : centers) {
    for (int i = 0; i < 500; ++i) {
      data.Add({c[0] + rng.NextGaussian() * 15.0,
                c[1] + rng.NextGaussian() * 15.0,
                c[2] + rng.NextGaussian() * 15.0});
    }
  }
  for (int i = 0; i < 50; ++i) {
    data.Add({rng.NextDouble(0, 1000), rng.NextDouble(0, 1000),
              rng.NextDouble(0, 1000)});
  }
  std::printf("dataset: %zu points in %dD\n", data.size(), data.dim());

  // 2. Cluster. eps/MinPts follow the usual DBSCAN semantics; rho is the
  // approximation ratio of Theorem 4 (0.001 recommended by the paper).
  const DbscanParams params{.eps = 30.0, .min_pts = 10};
  const Clustering result = ApproxDbscan(data, params, /*rho=*/0.001);

  // 3. Inspect the result.
  std::printf("clusters found: %d\n", result.num_clusters);
  std::printf("core points:    %zu\n", result.NumCorePoints());
  std::printf("noise points:   %zu\n", result.NumNoisePoints());
  for (const auto& set : result.ClusterSets()) {
    std::printf("  cluster of size %zu (first point id %u)\n", set.size(),
                set.front());
  }

  // 4. Cross-check against an exact algorithm (Theorem 2). At a stable eps
  // the approximate result is identical — that is the sandwich theorem in
  // action.
  const Clustering exact = ExactGridDbscan(data, params);
  std::printf("identical to exact DBSCAN: %s\n",
              SameClusters(result, exact) ? "yes" : "no");
  std::printf("ARI vs exact:              %.4f\n",
              AdjustedRandIndex(result, exact));
  return 0;
}
