// OPTICS reachability plot — the companion tool (reference [2] of the
// paper) behind the Figure 6 discussion: one OPTICS run shows the cluster
// structure at EVERY radius ε' ≤ ε at once, making stable ε choices visible
// as deep, wide valleys.
//
//   ./reachability_plot [--n 2000]
//
// Renders an ASCII reachability plot of a seed-spreader dataset, then
// extracts DBSCAN clusterings at three radii from the same OPTICS run and
// cross-checks them against the library's exact algorithm.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/adbscan.h"
#include "core/optics.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "util/flags.h"

using namespace adbscan;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 2000, "dataset cardinality")
      .DefineInt("min_pts", 20, "MinPts")
      .DefineDouble("eps", 20000.0, "OPTICS generating radius")
      .DefineInt("width", 100, "plot columns")
      .DefineInt("height", 16, "plot rows")
      .DefineInt("seed", 77, "generator seed");
  flags.Parse(argc, argv);

  SeedSpreaderParams p;
  p.dim = 2;
  p.n = static_cast<size_t>(flags.GetInt("n"));
  p.forced_restart_every = p.n / 4;
  p.noise_fraction = 0.01;
  const Dataset data = GenerateSeedSpreader(p, flags.GetInt("seed"));

  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts"))};
  const OpticsResult optics = RunOptics(data, params);

  // ASCII plot: bucket the ordering into `width` columns, draw the mean
  // reachability of each bucket (undefined treated as the ceiling).
  const int width = static_cast<int>(flags.GetInt("width"));
  const int height = static_cast<int>(flags.GetInt("height"));
  std::vector<double> column(width, 0.0);
  const size_t n = optics.order.size();
  for (int c = 0; c < width; ++c) {
    const size_t begin = n * c / width;
    const size_t end = std::max(begin + 1, n * (c + 1) / width);
    double sum = 0.0;
    for (size_t i = begin; i < end && i < n; ++i) {
      const double r = optics.reachability[optics.order[i]];
      sum += (r == OpticsResult::kUndefined) ? params.eps : r;
    }
    column[c] = sum / static_cast<double>(end - begin);
  }
  const double peak = *std::max_element(column.begin(), column.end());
  std::printf("OPTICS reachability plot (n=%zu, eps=%.0f, MinPts=%d)\n",
              n, params.eps, params.min_pts);
  std::printf("valleys = clusters; walls = separations; top = unreachable\n\n");
  for (int row = height; row-- > 0;) {
    const double level = peak * (row + 0.5) / height;
    std::putchar('|');
    for (int c = 0; c < width; ++c) {
      std::putchar(column[c] >= level ? '#' : ' ');
    }
    std::printf("  %.0f\n", level);
  }
  std::putchar('+');
  for (int c = 0; c < width; ++c) std::putchar('-');
  std::printf("> OPTICS order\n\n");

  // One ordering, many clusterings.
  for (double eps_prime : {params.eps / 8.0, params.eps / 3.0, params.eps}) {
    const Clustering extracted =
        ExtractDbscanClustering(data, optics, params, eps_prime);
    const Clustering exact =
        ExactGridDbscan(data, {eps_prime, params.min_pts});
    std::printf(
        "extract at eps'=%-8.0f -> %2d clusters (exact DBSCAN: %2d, core "
        "flags %s)\n",
        eps_prime, extracted.num_clusters, exact.num_clusters,
        extracted.is_core == exact.is_core ? "identical" : "DIFFER");
  }
  return 0;
}
