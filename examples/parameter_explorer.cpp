// Parameter exploration — the Figure 6 intuition, executable: how the
// cluster structure changes with ε, which ε values are stable, and how much
// approximation each ε tolerates (the maximum legal ρ of Section 5.2).
//
//   ./parameter_explorer [--n 20000] [--dim 3]
//
// For each ε on a sweep from a small radius to the dataset's collapsing
// radius, prints the exact cluster count, noise share, the maximum legal ρ,
// and whether the paper's recommended ρ = 0.001 is safe there.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/adbscan.h"
#include "eval/collapse.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 20000, "dataset cardinality")
      .DefineInt("dim", 3, "dimensionality")
      .DefineInt("min_pts", 100, "MinPts")
      .DefineInt("steps", 10, "number of eps values to explore")
      .DefineInt("seed", 4242, "generator seed");
  flags.Parse(argc, argv);

  SeedSpreaderParams p;
  p.dim = static_cast<int>(flags.GetInt("dim"));
  p.n = static_cast<size_t>(flags.GetInt("n"));
  const Dataset data = GenerateSeedSpreader(p, flags.GetInt("seed"));
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));
  std::printf("dataset: seed spreader, n=%zu, d=%d, MinPts=%d\n",
              data.size(), data.dim(), min_pts);

  CollapseOptions copts;
  copts.eps_lo = 500.0;
  const double collapse = FindCollapsingRadius(data, min_pts, copts);
  std::printf("collapsing radius (single cluster from here up): %.0f\n\n",
              collapse);

  const int steps = static_cast<int>(flags.GetInt("steps"));
  const double eps_lo = collapse / 10.0;
  Table t({"eps", "clusters", "noise %", "max legal rho",
           "rho=0.001 safe"});
  for (int s = 0; s < steps; ++s) {
    const double eps = eps_lo + (collapse * 1.05 - eps_lo) *
                                    static_cast<double>(s) /
                                    std::max(1, steps - 1);
    const DbscanParams params{eps, min_pts};
    const Clustering exact = ExactGridDbscan(data, params);
    const double max_rho = MaxLegalRho(data, params, exact);
    const double noise_pct =
        100.0 * static_cast<double>(exact.NumNoisePoints()) /
        static_cast<double>(data.size());
    t.AddRow({Table::Num(eps, 5), std::to_string(exact.num_clusters),
              Table::Num(noise_pct, 3), Table::Num(max_rho, 3),
              max_rho >= 0.001 ? "yes" : "NO (unstable eps)"});
  }
  t.Print();
  std::printf(
      "\nReading the table (paper, Sec. 4.2 and Fig. 6): stable eps values\n"
      "tolerate large rho; a tiny max legal rho flags an eps sitting right\n"
      "at a merge boundary — a poor parameter choice regardless of\n"
      "approximation.\n");
  return 0;
}
