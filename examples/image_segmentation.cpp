// Color segmentation of a (synthetic) satellite image with VZ-feature
// clustering — the workload behind the paper's Farm dataset (Section 5.1),
// where 5-dimensional VZ-features of a Saudi-Arabian farm image are
// clustered with DBSCAN.
//
//   ./image_segmentation [--width 256] [--height 256]
//
// Pipeline:
//   1. render a synthetic "terrain" image: smooth regions (fields, desert,
//      water) with texture noise;
//   2. extract a 5D VZ-style feature per pixel (local intensity statistics
//      over a 3x3 neighborhood, scaled to the paper's [0, 1e5] domain);
//   3. cluster the features with ρ-approximate DBSCAN;
//   4. score the recovered segments against the ground-truth terrain
//      classes with the adjusted Rand index.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace adbscan;

namespace {

struct SyntheticImage {
  int width;
  int height;
  std::vector<double> intensity;   // width*height grayscale
  std::vector<int> terrain_class;  // ground truth per pixel
};

// Terrain: smooth class field from a few seeded regions (Voronoi-ish),
// intensity = class base level + per-pixel texture.
SyntheticImage RenderImage(int width, int height, uint64_t seed) {
  constexpr int kClasses = 4;
  const double base_level[kClasses] = {0.15, 0.4, 0.65, 0.9};
  const double texture[kClasses] = {0.01, 0.03, 0.015, 0.02};
  Rng rng(seed);
  // Region seeds.
  std::vector<double> sx(kClasses * 3), sy(kClasses * 3);
  std::vector<int> sc(kClasses * 3);
  for (size_t s = 0; s < sx.size(); ++s) {
    sx[s] = rng.NextDouble(0, width);
    sy[s] = rng.NextDouble(0, height);
    sc[s] = static_cast<int>(s % kClasses);
  }
  SyntheticImage img{width, height, {}, {}};
  img.intensity.resize(static_cast<size_t>(width) * height);
  img.terrain_class.resize(img.intensity.size());
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double best = 1e30;
      int cls = 0;
      for (size_t s = 0; s < sx.size(); ++s) {
        const double d =
            (x - sx[s]) * (x - sx[s]) + (y - sy[s]) * (y - sy[s]);
        if (d < best) {
          best = d;
          cls = sc[s];
        }
      }
      const size_t i = static_cast<size_t>(y) * width + x;
      img.terrain_class[i] = cls;
      img.intensity[i] =
          base_level[cls] + rng.NextGaussian() * texture[cls];
    }
  }
  return img;
}

// 5D VZ-style features: local mean, local std, gradient magnitude, and the
// two directional responses — the classic "are filter banks necessary?"
// answer of Varma & Zisserman is that raw local patches suffice.
Dataset ExtractFeatures(const SyntheticImage& img) {
  Dataset features(5);
  features.Reserve(img.intensity.size());
  auto at = [&](int x, int y) {
    x = std::min(std::max(x, 0), img.width - 1);
    y = std::min(std::max(y, 0), img.height - 1);
    return img.intensity[static_cast<size_t>(y) * img.width + x];
  };
  for (int y = 0; y < img.height; ++y) {
    for (int x = 0; x < img.width; ++x) {
      double sum = 0.0, sum2 = 0.0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const double v = at(x + dx, y + dy);
          sum += v;
          sum2 += v * v;
        }
      }
      const double mean = sum / 9.0;
      const double var = std::max(0.0, sum2 / 9.0 - mean * mean);
      const double gx = at(x + 1, y) - at(x - 1, y);
      const double gy = at(x, y + 1) - at(x, y - 1);
      // Scale into the paper's normalized [0, 1e5] domain.
      features.Add({mean * 1e5, std::sqrt(var) * 1e5 * 4.0,
                    std::sqrt(gx * gx + gy * gy) * 1e5,
                    (gx + 1.0) * 5e4, (gy + 1.0) * 5e4});
    }
  }
  return features;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("width", 256, "image width")
      .DefineInt("height", 256, "image height")
      .DefineDouble("eps", 5000.0, "DBSCAN radius in feature space")
      .DefineInt("min_pts", 100, "MinPts")
      .DefineDouble("rho", 0.001, "approximation ratio")
      .DefineInt("seed", 31, "image seed");
  flags.Parse(argc, argv);

  const SyntheticImage img =
      RenderImage(static_cast<int>(flags.GetInt("width")),
                  static_cast<int>(flags.GetInt("height")),
                  flags.GetInt("seed"));
  std::printf("rendered %dx%d synthetic farm image (4 terrain classes)\n",
              img.width, img.height);

  const Dataset features = ExtractFeatures(img);
  std::printf("extracted %zu VZ-style 5D features\n", features.size());

  Timer timer;
  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts"))};
  const Clustering segments =
      ApproxDbscan(features, params, flags.GetDouble("rho"));
  std::printf("rho-approximate DBSCAN: %d segments, %zu noise pixels in "
              "%.3fs\n",
              segments.num_clusters, segments.NumNoisePoints(),
              timer.ElapsedSeconds());

  for (const auto& set : segments.ClusterSets()) {
    // Majority terrain class of the segment.
    int votes[8] = {0};
    for (uint32_t id : set) ++votes[img.terrain_class[id] & 7];
    int best = 0;
    for (int c = 1; c < 8; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    std::printf("  segment: %zu pixels, %d%% terrain class %d\n", set.size(),
                static_cast<int>(100.0 * votes[best] / set.size()), best);
  }

  // Ground-truth comparison (noise pixels count as singletons).
  Clustering truth;
  truth.num_clusters = 4;
  truth.label.assign(img.terrain_class.begin(), img.terrain_class.end());
  truth.is_core.assign(truth.label.size(), 1);
  std::printf("adjusted Rand index vs ground-truth terrain: %.3f\n",
              AdjustedRandIndex(segments, truth));
  return 0;
}
