// Activity monitoring — the workload behind the paper's PAMAP2 dataset
// (Section 5.1): cluster 4-dimensional feature vectors of wearable-sensor
// readings to discover activity modes, without labels.
//
//   ./activity_monitoring [--minutes 60]
//
// Pipeline:
//   1. simulate a subject cycling through activities (lie, sit, walk, run,
//      cycle), each with characteristic accelerometer/heart-rate dynamics;
//   2. summarize the stream into 4D windows (the "first 4 principal
//      components" of the paper, approximated by 4 engineered statistics);
//   3. cluster with ρ-approximate DBSCAN and align clusters to activities.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace adbscan;

namespace {

struct Activity {
  const char* name;
  double accel_mean;   // mean |acceleration|
  double accel_var;    // burstiness
  double heart_rate;   // bpm level
  double cadence;      // dominant frequency
};

constexpr Activity kActivities[] = {
    {"lying", 0.05, 0.01, 60.0, 0.0},
    {"sitting", 0.08, 0.02, 70.0, 0.0},
    {"walking", 0.45, 0.08, 100.0, 1.8},
    {"running", 0.85, 0.15, 160.0, 2.8},
    {"cycling", 0.55, 0.06, 130.0, 1.2},
};
constexpr int kNumActivities = 5;

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("minutes", 60, "simulated minutes of wear time")
      .DefineDouble("eps", 2500.0, "DBSCAN radius in feature space")
      .DefineInt("min_pts", 60, "MinPts")
      .DefineDouble("rho", 0.001, "approximation ratio")
      .DefineInt("seed", 17, "simulation seed");
  flags.Parse(argc, argv);

  // 1-2. Simulate per-second feature windows; bouts of 1-5 minutes.
  Rng rng(flags.GetInt("seed"));
  const size_t seconds = static_cast<size_t>(flags.GetInt("minutes")) * 60;
  Dataset features(4);
  features.Reserve(seconds);
  std::vector<int> truth_labels;
  truth_labels.reserve(seconds);
  int activity = 0;
  size_t bout_left = 0;
  for (size_t t = 0; t < seconds; ++t) {
    if (bout_left == 0) {
      activity = static_cast<int>(rng.NextBounded(kNumActivities));
      bout_left = 60 + rng.NextBounded(240);
    }
    const Activity& a = kActivities[activity];
    // Per-window measurements: each window averages many raw samples, so
    // the window-level noise is small relative to the between-mode gaps.
    const double accel =
        std::max(0.0, a.accel_mean + rng.NextGaussian() * 0.005);
    const double hr = a.heart_rate + rng.NextGaussian() * 1.0;
    const double cad = std::max(0.0, a.cadence + rng.NextGaussian() * 0.03);
    const double burst =
        std::max(0.0, a.accel_var + rng.NextGaussian() * 0.003);
    features.Add({accel * 8e4, hr * 600.0, cad * 2.5e4, burst * 2e5});
    truth_labels.push_back(activity);
    --bout_left;
  }
  std::printf("simulated %zu seconds across %d activities\n", seconds,
              kNumActivities);

  // 3. Cluster.
  Timer timer;
  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts"))};
  const Clustering modes =
      ApproxDbscan(features, params, flags.GetDouble("rho"));
  std::printf("rho-approximate DBSCAN: %d modes, %zu unassigned windows in "
              "%.3fs\n\n",
              modes.num_clusters, modes.NumNoisePoints(),
              timer.ElapsedSeconds());

  // 4. Align clusters to activities by majority vote.
  for (const auto& set : modes.ClusterSets()) {
    int votes[kNumActivities] = {0};
    for (uint32_t id : set) ++votes[truth_labels[id]];
    const int best = static_cast<int>(
        std::max_element(votes, votes + kNumActivities) - votes);
    std::printf("  mode of %5zu windows -> %-8s (%d%% pure)\n", set.size(),
                kActivities[best].name,
                static_cast<int>(100.0 * votes[best] / set.size()));
  }

  Clustering truth;
  truth.num_clusters = kNumActivities;
  truth.label.assign(truth_labels.begin(), truth_labels.end());
  truth.is_core.assign(truth.label.size(), 1);
  std::printf("\nadjusted Rand index vs true activities: %.3f\n",
              AdjustedRandIndex(modes, truth));
  return 0;
}
