// Activity monitoring — the workload behind the paper's PAMAP2 dataset
// (Section 5.1), run as a live stream: cluster 4-dimensional feature vectors
// of wearable-sensor readings to discover activity modes, without labels,
// while the subject keeps moving.
//
//   ./activity_monitoring [--minutes 60] [--window_minutes 15]
//
// Pipeline:
//   1. simulate a subject cycling through activities (lie, sit, walk, run,
//      cycle), each with characteristic accelerometer/heart-rate dynamics;
//   2. summarize the stream into 4D windows (the "first 4 principal
//      components" of the paper, approximated by 4 engineered statistics);
//   3. maintain ρ-approximate DBSCAN incrementally over a sliding window:
//      every minute the newest windows are inserted, the expired ones
//      removed, and the clustering is re-read — no from-scratch runs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/adbscan.h"
#include "stream/dynamic_clusterer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace adbscan;

namespace {

struct Activity {
  const char* name;
  double accel_mean;   // mean |acceleration|
  double accel_var;    // burstiness
  double heart_rate;   // bpm level
  double cadence;      // dominant frequency
};

constexpr Activity kActivities[] = {
    {"lying", 0.05, 0.01, 60.0, 0.0},
    {"sitting", 0.08, 0.02, 70.0, 0.0},
    {"walking", 0.45, 0.08, 100.0, 1.8},
    {"running", 0.85, 0.15, 160.0, 2.8},
    {"cycling", 0.55, 0.06, 130.0, 1.2},
};
constexpr int kNumActivities = 5;

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("minutes", 60, "simulated minutes of wear time")
      .DefineInt("window_minutes", 15, "sliding-window length")
      .DefineDouble("eps", 2500.0, "DBSCAN radius in feature space")
      .DefineInt("min_pts", 60, "MinPts")
      .DefineDouble("rho", 0.001, "approximation ratio")
      .DefineInt("seed", 17, "simulation seed");
  flags.Parse(argc, argv);

  Rng rng(flags.GetInt("seed"));
  const size_t minutes = static_cast<size_t>(flags.GetInt("minutes"));
  const size_t window_minutes =
      static_cast<size_t>(flags.GetInt("window_minutes"));

  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts"))};
  DynamicClusterer monitor(4, params,
                           {.rho = flags.GetDouble("rho")});

  // Per-second feature windows arrive one simulated minute at a time; the
  // monitor keeps the last window_minutes of them. Ids are assigned densely
  // by the clusterer in insertion order, so minute m occupies ids
  // [m * 60, m * 60 + 60) and expiring the oldest minute is one Remove call.
  std::vector<int> truth_labels;  // by global id, for the purity report
  int activity = 0;
  size_t bout_left = 0;
  double maintain_seconds = 0.0;
  for (size_t minute = 0; minute < minutes; ++minute) {
    Dataset batch(4);
    batch.Reserve(60);
    for (int s = 0; s < 60; ++s) {
      if (bout_left == 0) {
        activity = static_cast<int>(rng.NextBounded(kNumActivities));
        bout_left = 60 + rng.NextBounded(240);
      }
      const Activity& a = kActivities[activity];
      // Per-window measurements: each window averages many raw samples, so
      // the window-level noise is small relative to the between-mode gaps.
      const double accel =
          std::max(0.0, a.accel_mean + rng.NextGaussian() * 0.005);
      const double hr = a.heart_rate + rng.NextGaussian() * 1.0;
      const double cad = std::max(0.0, a.cadence + rng.NextGaussian() * 0.03);
      const double burst =
          std::max(0.0, a.accel_var + rng.NextGaussian() * 0.003);
      batch.Add({accel * 8e4, hr * 600.0, cad * 2.5e4, burst * 2e5});
      truth_labels.push_back(activity);
      --bout_left;
    }

    Timer timer;
    const uint32_t first = monitor.Insert(batch);
    if (minute >= window_minutes) {
      // Expire the minute that just slid out of the window.
      const uint32_t expired = first - static_cast<uint32_t>(window_minutes) * 60;
      std::vector<uint32_t> old_ids(60);
      for (int s = 0; s < 60; ++s) old_ids[s] = expired + s;
      monitor.Remove(old_ids);
    }
    const Clustering& modes = monitor.Labels();
    maintain_seconds += timer.ElapsedSeconds();

    // Report every 5 minutes: which activity does each live mode track?
    if ((minute + 1) % 5 != 0) continue;
    std::printf("t=%2zumin: %zu windows live, %d modes\n", minute + 1,
                monitor.num_alive(), modes.num_clusters);
    std::vector<std::vector<uint32_t>> members(modes.num_clusters);
    for (uint32_t id = 0; id < monitor.num_points(); ++id) {
      if (monitor.alive(id) && modes.label[id] >= 0) {
        members[modes.label[id]].push_back(id);
      }
    }
    for (const auto& set : members) {
      if (set.empty()) continue;
      int votes[kNumActivities] = {0};
      for (uint32_t id : set) ++votes[truth_labels[id]];
      const int best = static_cast<int>(
          std::max_element(votes, votes + kNumActivities) - votes);
      std::printf("  mode of %4zu windows -> %-8s (%d%% pure)\n", set.size(),
                  kActivities[best].name,
                  static_cast<int>(100.0 * votes[best] / set.size()));
    }
  }

  std::printf(
      "\nmaintained the clustering through %zu minutes of stream in %.3fs "
      "total (%.1f ms per minute of data)\n",
      minutes, maintain_seconds, 1000.0 * maintain_seconds / minutes);
  return 0;
}
